// The latency budget must degrade DETERMINISTICALLY: the truncated alert
// set is a pure function of (bank, config) — identical at every epoch
// thread count — and a budget generous enough never to trip must leave the
// alerts bit-identical to an unbudgeted run (the fused-epoch output this
// repo has shipped since the task-pool PR).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "../testing/synthetic.hpp"
#include "detect/hifind.hpp"

namespace hifind {
namespace {

using testing::feed_completed;
using testing::feed_flood;
using testing::feed_hscan;
using testing::feed_vscan;

SketchBankConfig bank_cfg() {
  SketchBankConfig c;
  c.seed = 42;
  c.twod.x_buckets = 1u << 10;
  return c;
}

HifindDetectorConfig det_cfg(std::size_t epoch_threads,
                             const EpochBudget& budget) {
  HifindDetectorConfig c;
  c.interval_seconds = 60;
  c.syn_rate_threshold = 1.0;
  c.min_persist_intervals = 2;
  c.epoch_threads = epoch_threads;
  c.budget = budget;
  return c;
}

/// Attack-heavy scenario: many concurrent anomalies per interval so the
/// reversal search has real work for a budget to cut into.
std::vector<IntervalResult> replay(std::size_t epoch_threads,
                                   const EpochBudget& budget) {
  SketchBank bank(bank_cfg());
  HifindDetector detector(det_cfg(epoch_threads, budget));
  Pcg32 rng(7, 11);
  std::vector<IntervalResult> results;
  for (std::uint64_t interval = 0; interval < 6; ++interval) {
    for (int v = 0; v < 6; ++v) {
      const IPv4 victim(129, 105, 1, static_cast<std::uint8_t>(1 + v));
      feed_completed(bank, IPv4(100, 1, 1, static_cast<std::uint8_t>(1 + v)),
                     victim, 80, 30);
      if (interval >= 2) {
        feed_flood(bank, victim, 80, 300, /*spoofed=*/true, rng);
      }
    }
    if (interval >= 2) {
      feed_hscan(bank, IPv4(7, 7, 7, 7), 445, 250);
      feed_vscan(bank, IPv4(8, 8, 8, 8), IPv4(129, 105, 9, 9), 250);
    }
    results.push_back(detector.process(bank, interval));
    bank.clear();
  }
  return results;
}

void expect_identical(const std::vector<IntervalResult>& a,
                      const std::vector<IntervalResult>& b,
                      const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].raw, b[i].raw) << what << " raw, interval " << i;
    EXPECT_EQ(a[i].after_2d, b[i].after_2d)
        << what << " after_2d, interval " << i;
    EXPECT_EQ(a[i].final, b[i].final) << what << " final, interval " << i;
    EXPECT_EQ(a[i].epoch, b[i].epoch) << what << " epoch, interval " << i;
  }
}

/// A budget tight enough to actually truncate this scenario. The work cap
/// derives from deadline * work_units_per_ms, so pin both: the test must
/// not depend on the default calibration constant.
EpochBudget tight_budget() {
  EpochBudget b;
  b.deadline_ms = 1.0;
  b.work_units_per_ms = 600.0;  // 600 work units total, 200 per inference
  b.max_heavy_per_stage = 4;
  return b;
}

TEST(BudgetDeterminism, TightBudgetActuallyTruncates) {
  // Guard against vacuous equality: the tight budget must report truncation
  // on the attack-heavy intervals AND still produce some alerts.
  const auto results = replay(/*epoch_threads=*/1, tight_budget());
  bool any_truncated = false;
  std::size_t alerts = 0;
  for (const auto& r : results) {
    if (r.epoch.truncated) {
      any_truncated = true;
      EXPECT_TRUE(r.epoch.budgeted);
      EXPECT_GT(r.epoch.work_budget, 0u);
    }
    alerts += r.raw.size();
  }
  EXPECT_TRUE(any_truncated);
  EXPECT_GT(alerts, 0u);
}

TEST(BudgetDeterminism, TruncatedAlertsIdenticalAcrossThreadCounts) {
  const EpochBudget budget = tight_budget();
  const auto serial = replay(/*epoch_threads=*/1, budget);
  expect_identical(serial, replay(2, budget), "2 threads");
  expect_identical(serial, replay(4, budget), "4 threads");
  expect_identical(serial, replay(8, budget), "8 threads");
}

TEST(BudgetDeterminism, ZeroPressureBudgetBitIdenticalToUnbudgeted) {
  // A budget the scenario never hits must be invisible in the alerts: same
  // output as the unbudgeted fused epoch, at every thread count.
  EpochBudget loose;
  loose.deadline_ms = 1e6;          // ~2.5e10 work units with the default rate
  loose.max_heavy_per_stage = 0;    // stage cap off: pure work-meter mode
  const auto unbudgeted = replay(/*epoch_threads=*/1, EpochBudget{});
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const auto budgeted = replay(threads, loose);
    ASSERT_EQ(unbudgeted.size(), budgeted.size());
    for (std::size_t i = 0; i < unbudgeted.size(); ++i) {
      EXPECT_EQ(unbudgeted[i].raw, budgeted[i].raw) << "interval " << i;
      EXPECT_EQ(unbudgeted[i].after_2d, budgeted[i].after_2d)
          << "interval " << i;
      EXPECT_EQ(unbudgeted[i].final, budgeted[i].final) << "interval " << i;
      // The report differs only in the budget bookkeeping, never in the
      // degradation flags.
      EXPECT_FALSE(budgeted[i].epoch.truncated) << "interval " << i;
      EXPECT_EQ(unbudgeted[i].epoch.truncated, budgeted[i].epoch.truncated);
      EXPECT_EQ(unbudgeted[i].epoch.heavy_buckets_dropped,
                budgeted[i].epoch.heavy_buckets_dropped);
    }
  }
}

TEST(BudgetDeterminism, UnbudgetedEpochReportsComplete) {
  const auto results = replay(/*epoch_threads=*/1, EpochBudget{});
  for (const auto& r : results) {
    EXPECT_FALSE(r.epoch.budgeted);
    EXPECT_FALSE(r.epoch.truncated);
    EXPECT_EQ(r.epoch.work_budget, 0u);
  }
}

TEST(BudgetDeterminism, StageCapBiasKeepsLargestAnomalies) {
  // With only the stage cap active (no work meter), truncation must keep a
  // DOMINANT flood: the top-N heavy-bucket selection is value-ordered, so
  // the 10x-larger victim's buckets survive in every stage even when the
  // small floods get cut.
  EpochBudget cap_only;
  cap_only.deadline_ms = 1e6;  // effectively infinite work
  cap_only.max_heavy_per_stage = 2;
  SketchBank bank(bank_cfg());
  HifindDetector detector(det_cfg(/*epoch_threads=*/1, cap_only));
  Pcg32 rng(17, 23);
  const IPv4 big(129, 105, 1, 1);
  bool saw_big_alert = false;
  bool saw_truncation = false;
  for (std::uint64_t interval = 0; interval < 3; ++interval) {
    feed_completed(bank, IPv4(100, 1, 1, 1), big, 80, 30);
    for (int v = 0; v < 5; ++v) {
      feed_completed(bank, IPv4(100, 1, 2, static_cast<std::uint8_t>(1 + v)),
                     IPv4(129, 105, 2, static_cast<std::uint8_t>(1 + v)), 80,
                     30);
    }
    if (interval >= 1) {
      feed_flood(bank, big, 80, 2000, /*spoofed=*/true, rng);
      for (int v = 0; v < 5; ++v) {
        feed_flood(bank, IPv4(129, 105, 2, static_cast<std::uint8_t>(1 + v)),
                   80, 200, /*spoofed=*/true, rng);
      }
    }
    const IntervalResult r = detector.process(bank, interval);
    bank.clear();
    if (interval < 1) continue;
    saw_truncation |= r.epoch.heavy_buckets_dropped > 0;
    const std::uint64_t big_key = pack_ip_port(big, 80);
    for (const Alert& a : r.raw) {
      if (a.type == AttackType::kSynFlooding && a.key == big_key) {
        saw_big_alert = true;
      }
    }
  }
  EXPECT_TRUE(saw_truncation) << "cap=2 must actually drop buckets";
  EXPECT_TRUE(saw_big_alert);
}

}  // namespace
}  // namespace hifind
