// The double-buffered overlapped pipeline must be a pure scheduling change:
// for the same packet stream it must emit BIT-IDENTICAL alerts to the serial
// record -> drain -> process -> clear loop, at any recording thread count,
// epoch thread count, or ring size — including the lifetime SYN/ACK history
// that the generation swap has to sync by hand. Runs under TSan in CI (the
// suite name is in the TSan filter) to check the rebind and epoch-mailbox
// handoffs for races.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "../testing/synthetic.hpp"
#include "detect/hifind.hpp"
#include "detect/overlapped.hpp"
#include "detect/parallel_recorder.hpp"

namespace hifind {
namespace {

using testing::feed_completed;
using testing::feed_flood;
using testing::feed_hscan;
using testing::feed_vscan;

SketchBankConfig bank_cfg() {
  SketchBankConfig c;
  c.seed = 42;
  c.twod.x_buckets = 1u << 10;
  return c;
}

HifindDetectorConfig det_cfg(std::size_t epoch_threads,
                             const EpochBudget& budget = {}) {
  HifindDetectorConfig c;
  c.interval_seconds = 60;
  c.syn_rate_threshold = 1.0;
  c.min_persist_intervals = 2;
  c.epoch_threads = epoch_threads;
  c.budget = budget;
  return c;
}

using RecordMode = OverlappedPipelineConfig::RecordMode;

/// A budget tight enough to truncate the mixed-attack scenario (same pinning
/// rationale as budget_determinism_test): the sharded pipeline must degrade
/// IDENTICALLY to the serial one when both run budgeted.
EpochBudget tight_budget() {
  EpochBudget b;
  b.deadline_ms = 1.0;
  b.work_units_per_ms = 600.0;
  b.max_heavy_per_stage = 4;
  return b;
}

/// Feeds the fixed 10-interval mixed-attack scenario into `sink`, calling
/// `close(interval)` at each interval boundary. The same generator drives
/// both pipelines so the packet streams are literally identical.
template <class Sink, class Close>
void run_scenario(Sink& sink, Close&& close) {
  Pcg32 rng(7, 11);
  const IPv4 victim(129, 105, 1, 1);
  const IPv4 victim2(129, 105, 2, 2);
  for (std::uint64_t interval = 0; interval < 10; ++interval) {
    feed_completed(sink, IPv4(100, 1, 1, 1), victim, 80, 30);
    feed_completed(sink, IPv4(100, 1, 1, 2), victim2, 443, 30);
    feed_completed(sink, IPv4(100, 1, 1, 3), IPv4(129, 105, 1, 3), 22, 20);
    if (interval >= 2) {
      feed_flood(sink, victim, 80, 400, /*spoofed=*/true, rng);
    }
    if (interval >= 3 && interval <= 7) {
      feed_flood(sink, victim2, 443, 300, /*spoofed=*/false, rng,
                 IPv4(6, 6, 6, 6));
    }
    if (interval >= 4) {
      feed_hscan(sink, IPv4(7, 7, 7, 7), 445, 250);
      feed_vscan(sink, IPv4(8, 8, 8, 8), IPv4(129, 105, 9, 9), 250);
    }
    close(interval);
  }
}

std::vector<IntervalResult> replay_serial(std::size_t epoch_threads,
                                          const EpochBudget& budget = {}) {
  SketchBank bank(bank_cfg());
  HifindDetector detector(det_cfg(epoch_threads, budget));
  std::vector<IntervalResult> results;
  run_scenario(bank, [&](std::uint64_t interval) {
    results.push_back(detector.process(bank, interval));
    bank.clear();
  });
  return results;
}

std::vector<IntervalResult> replay_overlapped(RecordMode mode,
                                              unsigned record_threads,
                                              std::size_t epoch_threads,
                                              std::size_t ring_capacity =
                                                  ParallelRecorder::
                                                      kDefaultRingCapacity,
                                              const EpochBudget& budget = {}) {
  OverlappedPipelineConfig cfg;
  cfg.bank = bank_cfg();
  cfg.detector = det_cfg(epoch_threads, budget);
  cfg.record_mode = mode;
  cfg.record_threads = record_threads;
  cfg.ring_capacity = ring_capacity;
  OverlappedPipeline pipe(cfg);
  run_scenario(pipe, [&](std::uint64_t) { pipe.close_interval(); });
  pipe.wait_epoch_idle();
  return pipe.take_results();
}

void expect_identical(const std::vector<IntervalResult>& a,
                      const std::vector<IntervalResult>& b,
                      const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].interval, b[i].interval) << what << " interval " << i;
    EXPECT_EQ(a[i].raw, b[i].raw) << what << " raw, interval " << i;
    EXPECT_EQ(a[i].after_2d, b[i].after_2d)
        << what << " after_2d, interval " << i;
    EXPECT_EQ(a[i].final, b[i].final) << what << " final, interval " << i;
    EXPECT_EQ(a[i].epoch, b[i].epoch) << what << " epoch, interval " << i;
  }
}

TEST(OverlapDeterminism, ScenarioProducesAlerts) {
  // Guard against vacuous equality: the scenario must actually alert, and
  // phase 3 must actually exercise the lifetime history the swap syncs.
  const auto serial = replay_serial(1);
  std::size_t raw = 0, fin = 0;
  for (const auto& r : serial) {
    raw += r.raw.size();
    fin += r.final.size();
  }
  EXPECT_GT(raw, 0u);
  EXPECT_GT(fin, 0u);
}

TEST(OverlapDeterminism, OverlappedBitIdenticalToSerial) {
  const auto serial = replay_serial(/*epoch_threads=*/1);
  expect_identical(serial,
                   replay_overlapped(RecordMode::kSharedBank, 1, 1),
                   "1 rec thread, serial epoch");
  expect_identical(serial, replay_overlapped(RecordMode::kSharedBank, 2, 1),
                   "2 rec threads");
  expect_identical(serial, replay_overlapped(RecordMode::kSharedBank, 4, 4),
                   "4 rec + 4 epoch threads");
}

TEST(OverlapDeterminism, ShardedBitIdenticalToSerial) {
  // The tentpole guarantee: shared-nothing replicas merged by linearity at
  // seal are a pure scheduling change — same alerts as the serial loop at
  // every shard count, including the cumulative SYN/ACK history that lives
  // in the merged bank rather than being synced between generations.
  const auto serial = replay_serial(/*epoch_threads=*/1);
  expect_identical(serial,
                   replay_overlapped(RecordMode::kShardedReplicas, 1, 1),
                   "1 shard");
  expect_identical(serial,
                   replay_overlapped(RecordMode::kShardedReplicas, 2, 1),
                   "2 shards");
  expect_identical(serial,
                   replay_overlapped(RecordMode::kShardedReplicas, 4, 4),
                   "4 shards, 4 epoch threads");
  expect_identical(serial,
                   replay_overlapped(RecordMode::kShardedReplicas, 8, 2),
                   "8 shards");
}

TEST(OverlapDeterminism, TinyRingsDoNotChangeAlerts) {
  // Tiny rings force constant wrap-around/backpressure in the recorder while
  // the epoch runs concurrently — the most adversarial interleaving.
  const auto serial = replay_serial(/*epoch_threads=*/1);
  expect_identical(serial,
                   replay_overlapped(RecordMode::kSharedBank, 3, 2,
                                     /*ring_capacity=*/8),
                   "shared, ring 8");
  expect_identical(serial,
                   replay_overlapped(RecordMode::kShardedReplicas, 3, 2,
                                     /*ring_capacity=*/8),
                   "sharded, ring 8");
}

TEST(OverlapDeterminism, ShardedBudgetedDegradesIdentically) {
  // Budgeted + sharded: the latency budget's deterministic-truncation
  // contract must hold over the merged bank exactly as over a serial one —
  // same truncated alert set, same EpochReport degradation fields.
  const EpochBudget budget = tight_budget();
  const auto serial = replay_serial(/*epoch_threads=*/1, budget);
  bool any_truncated = false;
  for (const auto& r : serial) any_truncated |= r.epoch.truncated;
  EXPECT_TRUE(any_truncated) << "budget never tripped — vacuous test";
  expect_identical(
      serial,
      replay_overlapped(RecordMode::kShardedReplicas, 4, 2,
                        ParallelRecorder::kDefaultRingCapacity, budget),
      "sharded budgeted");
}

TEST(OverlapDeterminism, ShardedReportsMergeTelemetry) {
  const auto sharded =
      replay_overlapped(RecordMode::kShardedReplicas, 4, 1);
  ASSERT_EQ(sharded.size(), 10u);
  bool any_all_busy = false;
  for (const auto& r : sharded) {
    EXPECT_EQ(r.epoch.shards, 4u);
    // Normalized occupancy brackets 1.0 (= perfectly balanced). Quiet
    // intervals can fit in fewer producer batches than there are shards, so
    // min may be 0 there; the attack-heavy intervals must load every shard.
    EXPECT_GE(r.epoch.shard_occupancy_min, 0.0);
    EXPECT_LE(r.epoch.shard_occupancy_min, 1.0 + 1e-9);
    EXPECT_GE(r.epoch.shard_occupancy_max, 1.0 - 1e-9);
    any_all_busy |= r.epoch.shard_occupancy_min > 0.0;
  }
  EXPECT_TRUE(any_all_busy) << "no interval ever loaded all shards";
  const auto shared = replay_overlapped(RecordMode::kSharedBank, 4, 1);
  for (const auto& r : shared) EXPECT_EQ(r.epoch.shards, 0u);
}

TEST(OverlapDeterminism, ResultsArriveInIntervalOrder) {
  const auto results = replay_overlapped(RecordMode::kShardedReplicas, 2, 2);
  ASSERT_EQ(results.size(), 10u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].interval, i);
  }
}

TEST(OverlapDeterminism, RebindSealsExactly) {
  // Direct rebind check: packets offered before rebind() land in the old
  // bank, packets after land in the new one, matching two serial banks.
  const SketchBankConfig cfg = bank_cfg();
  SketchBank serial_a(cfg), serial_b(cfg);
  feed_completed(serial_a, IPv4(10, 0, 0, 1), IPv4(10, 0, 0, 2), 80, 200);
  feed_hscan(serial_b, IPv4(7, 7, 7, 7), 445, 200);

  SketchBank par_a(cfg), par_b(cfg);
  ParallelRecorder rec(par_a, 3, /*ring_capacity=*/16);
  feed_completed(rec, IPv4(10, 0, 0, 1), IPv4(10, 0, 0, 2), 80, 200);
  rec.rebind(par_b);
  feed_hscan(rec, IPv4(7, 7, 7, 7), 445, 200);
  rec.drain();

  EXPECT_EQ(par_a.packets_recorded(), serial_a.packets_recorded());
  EXPECT_EQ(par_b.packets_recorded(), serial_b.packets_recorded());
  // Spot-check counter state through estimates on the recorded keys.
  const std::uint64_t key = pack_ip_port(IPv4(10, 0, 0, 2), 80);
  EXPECT_EQ(par_a.os_dip_dport().estimate(key),
            serial_a.os_dip_dport().estimate(key));
  EXPECT_EQ(par_b.os_dip_dport().estimate(key),
            serial_b.os_dip_dport().estimate(key));
}

TEST(OverlapDeterminism, HistorySyncIsBitExact) {
  const SketchBankConfig cfg = bank_cfg();
  SketchBank a(cfg), b(cfg);
  Pcg32 rng(3, 5);
  feed_completed(a, IPv4(10, 0, 0, 1), IPv4(10, 0, 0, 2), 80, 500);
  feed_flood(a, IPv4(10, 0, 0, 2), 80, 300, /*spoofed=*/true, rng);
  b.sync_history_from(a);
  const auto av = a.synack_history().counters();
  const auto bv = b.synack_history().counters();
  ASSERT_EQ(av.size(), bv.size());
  for (std::size_t i = 0; i < av.size(); ++i) {
    ASSERT_EQ(av[i], bv[i]) << "counter " << i;
  }
}

}  // namespace
}  // namespace hifind
