#include "detect/sketch_bank.hpp"

#include <gtest/gtest.h>

#include "../testing/synthetic.hpp"

namespace hifind {
namespace {

using testing::feed_completed;
using testing::feed_flood;
using testing::syn_packet;
using testing::synack_packet;

SketchBankConfig small_bank(std::uint64_t seed = 42) {
  SketchBankConfig c;
  c.seed = seed;
  // Shrink shapes for test speed; ratios match the paper layout.
  c.rs48.bucket_bits = 12;
  c.rs64.bucket_bits = 16;
  c.verification.num_buckets = 1u << 12;
  c.original.num_buckets = 1u << 12;
  c.twod.x_buckets = 1u << 10;
  return c;
}

TEST(SketchBankTest, CompletedHandshakeNetsToZero) {
  SketchBank bank(small_bank());
  feed_completed(bank, IPv4(100, 1, 1, 1), IPv4(129, 105, 1, 1), 443, 50);
  const std::uint64_t key = pack_ip_port(IPv4(129, 105, 1, 1), 443);
  EXPECT_NEAR(bank.rs_dip_dport().estimate(key), 0.0, 1.0);
  EXPECT_NEAR(bank.verif_dip_dport().estimate(key), 0.0, 1.0);
}

TEST(SketchBankTest, UnansweredSynsAccumulate) {
  SketchBank bank(small_bank());
  Pcg32 rng(1);
  feed_flood(bank, IPv4(129, 105, 9, 9), 80, 300, /*spoofed=*/true, rng);
  const std::uint64_t key = pack_ip_port(IPv4(129, 105, 9, 9), 80);
  EXPECT_NEAR(bank.rs_dip_dport().estimate(key), 300.0, 20.0);
}

TEST(SketchBankTest, OsRecordsSynOnly) {
  SketchBank bank(small_bank());
  // 100 completed handshakes: RS nets 0 but OS counts 100 SYNs.
  feed_completed(bank, IPv4(100, 1, 1, 1), IPv4(129, 105, 1, 1), 443, 100);
  const std::uint64_t key = pack_ip_port(IPv4(129, 105, 1, 1), 443);
  EXPECT_NEAR(bank.os_dip_dport().estimate(key), 100.0, 5.0);
}

TEST(SketchBankTest, SynackHistorySurvivesClear) {
  SketchBank bank(small_bank());
  feed_completed(bank, IPv4(100, 1, 1, 1), IPv4(129, 105, 1, 1), 443, 40);
  const std::uint64_t key = pack_ip_port(IPv4(129, 105, 1, 1), 443);
  EXPECT_GE(bank.synack_history().estimate(key), 30.0);
  bank.clear();
  EXPECT_GE(bank.synack_history().estimate(key), 30.0)
      << "lifetime history must survive interval clears";
  EXPECT_NEAR(bank.rs_dip_dport().estimate(key), 0.0, 1e-9);
  bank.reset_all();
  EXPECT_NEAR(bank.synack_history().estimate(key), 0.0, 1.0);
}

TEST(SketchBankTest, NonSynPacketsAreIgnored) {
  SketchBank bank(small_bank());
  PacketRecord ack = syn_packet(0, IPv4(1, 1, 1, 1), IPv4(2, 2, 2, 2), 80);
  ack.flags = kAck;
  bank.record(ack);
  PacketRecord udp = syn_packet(0, IPv4(1, 1, 1, 1), IPv4(2, 2, 2, 2), 53);
  udp.proto = Protocol::kUdp;
  bank.record(udp);
  EXPECT_EQ(bank.packets_recorded(), 0u);
}

TEST(SketchBankTest, TwoDSketchesSeeCorrectDimensions) {
  SketchBank bank(small_bank());
  const IPv4 attacker(6, 6, 6, 6);
  const IPv4 target(129, 105, 3, 3);
  // Vertical scan: 200 ports on one target.
  for (int port = 1; port <= 200; ++port) {
    bank.record(syn_packet(port, attacker, target,
                           static_cast<std::uint16_t>(port)));
  }
  const std::uint64_t sipdip = pack_ip_ip(attacker, target);
  EXPECT_EQ(bank.twod_sipdip_dport().classify(sipdip),
            ColumnShape::kSpread);

  // Non-spoofed flood from another source: one port, one target.
  const IPv4 flooder(7, 7, 7, 7);
  for (int i = 0; i < 200; ++i) {
    bank.record(syn_packet(1000 + i, flooder, target, 80));
  }
  EXPECT_EQ(bank.twod_sipdip_dport().classify(pack_ip_ip(flooder, target)),
            ColumnShape::kConcentrated);
}

TEST(SketchBankTest, CombineEqualsSingleBank) {
  const SketchBankConfig cfg = small_bank(9);
  SketchBank a(cfg), b(cfg), whole(cfg);
  Pcg32 rng(2);
  for (int i = 0; i < 2000; ++i) {
    PacketRecord p = syn_packet(
        i, IPv4{rng.next()}, IPv4{0x81690000u | (rng.next() & 0xffff)},
        static_cast<std::uint16_t>(rng.bounded(1024)));
    if (rng.chance(0.4)) p.flags = kSyn | kAck;
    (rng.chance(0.5) ? a : b).record(p);
    whole.record(p);
  }
  std::vector<std::pair<double, const SketchBank*>> terms{{1.0, &a},
                                                          {1.0, &b}};
  const SketchBank combined = SketchBank::combine(terms);
  const auto cw = whole.rs_dip_dport().counters();
  const auto cc = combined.rs_dip_dport().counters();
  for (std::size_t i = 0; i < cw.size(); ++i) {
    ASSERT_DOUBLE_EQ(cw[i], cc[i]);
  }
  EXPECT_EQ(combined.packets_recorded(), whole.packets_recorded());
}

TEST(SketchBankTest, CombineRejectsDifferentSeeds) {
  SketchBank a(small_bank(1)), b(small_bank(2));
  EXPECT_THROW(a.accumulate(b), std::invalid_argument);
}

TEST(SketchBankTest, WeightedRecordScalesEveryMetric) {
  // Sampled deployment: 1/4 of packets recorded at weight 4 must estimate
  // the same totals (in expectation; here deterministically, by recording
  // every 4th packet of a uniform stream).
  SketchBank full(small_bank(3)), sampled(small_bank(3));
  const IPv4 victim(129, 105, 9, 9);
  Pcg32 rng(5);
  int i = 0;
  for (int n = 0; n < 400; ++n, ++i) {
    const auto p = syn_packet(n, IPv4{rng.next()}, victim, 80,
                              static_cast<std::uint16_t>(1024 + n));
    full.record(p);
    if (i % 4 == 0) sampled.record(p, 4.0);
  }
  const std::uint64_t key = pack_ip_port(victim, 80);
  EXPECT_NEAR(sampled.rs_dip_dport().estimate(key),
              full.rs_dip_dport().estimate(key), 30.0);
  EXPECT_NEAR(sampled.os_dip_dport().estimate(key),
              full.os_dip_dport().estimate(key), 30.0);
}

TEST(SketchBankTest, PaperShapeMemoryIsAbout13MB) {
  // Full paper configuration: 13.2MB with 32-bit counters (Sec. 5.5.1).
  SketchBankConfig paper;
  SketchBank bank(paper);
  const double mb = static_cast<double>(bank.memory_bytes_hw()) / 1e6;
  EXPECT_GT(mb, 8.0);
  EXPECT_LT(mb, 18.0);
}

TEST(SketchBankTest, AccessesPerPacketIsSmallAndFixed) {
  SketchBank bank(small_bank());
  // 3 RS x 6 + 3 verif x 6 + OS x 6 + 2 x 2D x 5 = 52. (A SYN updates the
  // OS, a SYN/ACK the history sketch — also 6 stages — so the per-packet
  // total is 52 either way.)
  EXPECT_EQ(bank.accesses_per_packet(), 52u);
}

}  // namespace
}  // namespace hifind
