// Tentpole property: shared-nothing shard replicas reduced by COMBINE
// linearity must be BIT-IDENTICAL (==, not ULP-tolerant) to serial record()
// of the same stream — at every shard count, under attack-heavy randomized
// traffic, with the merge run inline or fanned out on a TaskPool. Runs under
// TSan in CI (the suite names are in the TSan filter) to check the per-shard
// rings, rebind, and merge handoff for races.
#include "detect/parallel_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "../testing/synthetic.hpp"
#include "common/task_pool.hpp"
#include "detect/sketch_bank.hpp"

namespace hifind {
namespace {

using testing::feed_completed;
using testing::feed_hscan;
using testing::syn_packet;
using testing::synack_packet;

SketchBankConfig cfg() {
  SketchBankConfig c;
  c.seed = 42;
  c.rs48.bucket_bits = 12;
  c.verification.num_buckets = 1u << 12;
  c.original.num_buckets = 1u << 12;
  c.twod.x_buckets = 1u << 10;
  return c;
}

/// Attack-heavy randomized traffic: the regime sharding exists for. Mostly
/// one-sided SYNs (spoofed floods at a handful of victims, horizontal and
/// vertical scan probes) with a background of completed flows, all orders
/// interleaved by the RNG.
std::vector<PacketRecord> attack_heavy_stream(int n, std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<PacketRecord> out;
  out.reserve(static_cast<std::size_t>(n) * 2);
  const IPv4 victims[3] = {IPv4(129, 105, 1, 1), IPv4(129, 105, 2, 2),
                           IPv4(129, 105, 3, 3)};
  for (int i = 0; i < n; ++i) {
    const std::uint32_t roll = rng.bounded(10);
    if (roll < 3) {
      // Benign completed flow.
      const IPv4 server{0x81690000u | (rng.next() & 0xffu)};
      const IPv4 client{rng.next()};
      const auto sport = static_cast<std::uint16_t>(1024 + rng.bounded(60000));
      out.push_back(syn_packet(i, client, server, 443, sport));
      out.push_back(synack_packet(i, server, 443, client, sport));
    } else if (roll < 7) {
      // Spoofed SYN flood: random sources, few victims, no responses.
      out.push_back(syn_packet(i, IPv4{rng.next()}, victims[rng.bounded(3)],
                               80,
                               static_cast<std::uint16_t>(rng.bounded(60000))));
    } else if (roll < 9) {
      // Horizontal scan: one source probing one port across many hosts.
      out.push_back(syn_packet(i, IPv4(7, 7, 7, 7),
                               IPv4{0x81690000u | (rng.next() & 0xffffu)},
                               445));
    } else {
      // Vertical scan: one source walking ports on one host.
      out.push_back(syn_packet(i, IPv4(8, 8, 8, 8), victims[0],
                               static_cast<std::uint16_t>(rng.bounded(1024))));
    }
  }
  return out;
}

void expect_bank_bit_identical(const SketchBank& a, const SketchBank& b) {
  EXPECT_EQ(a.packets_recorded(), b.packets_recorded());
  auto same = [](std::span<const double> x, std::span<const double> y) {
    ASSERT_EQ(x.size(), y.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      ASSERT_EQ(x[i], y[i]) << "counter " << i;
    }
  };
  same(a.rs_sip_dport().counters(), b.rs_sip_dport().counters());
  same(a.rs_dip_dport().counters(), b.rs_dip_dport().counters());
  same(a.rs_sip_dip().counters(), b.rs_sip_dip().counters());
  same(a.verif_sip_dport().counters(), b.verif_sip_dport().counters());
  same(a.verif_dip_dport().counters(), b.verif_dip_dport().counters());
  same(a.verif_sip_dip().counters(), b.verif_sip_dip().counters());
  same(a.os_dip_dport().counters(), b.os_dip_dport().counters());
  same(a.twod_sipdip_dport().cells(), b.twod_sipdip_dport().cells());
  same(a.twod_sipdport_dip().cells(), b.twod_sipdport_dip().cells());
  same(a.synack_history().counters(), b.synack_history().counters());
}

struct ShardedCase {
  unsigned shards;
  std::size_t ring_capacity;
};

class ShardedDeterminism : public ::testing::TestWithParam<ShardedCase> {};

TEST_P(ShardedDeterminism, MergedShardsBitIdenticalToSerial) {
  const auto [num_shards, ring_capacity] = GetParam();
  Pcg32 stream_rng(0xacedULL * num_shards + ring_capacity);
  const auto stream =
      attack_heavy_stream(12000 + static_cast<int>(stream_rng.bounded(5000)),
                         stream_rng.next64());

  SketchBank serial(cfg());
  for (const auto& p : stream) serial.record(p);

  std::vector<std::unique_ptr<SketchBank>> banks;
  std::vector<SketchBank*> shards;
  for (unsigned i = 0; i < num_shards; ++i) {
    banks.push_back(std::make_unique<SketchBank>(cfg()));
    shards.push_back(banks.back().get());
  }
  {
    ShardedRecorder rec(shards, ring_capacity);
    // Mid-stream drains at random points exercise partial producer batches
    // (the round-robin deal-out includes short flushed tails).
    std::size_t next_drain = 1 + stream_rng.bounded(4096);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      rec.offer(stream[i]);
      if (i == next_drain) {
        rec.drain();
        next_drain += 1 + stream_rng.bounded(4096);
      }
    }
    rec.drain();
  }

  SketchBank merged(cfg());
  merged.merge_shards(
      std::span<const SketchBank* const>(shards.data(), shards.size()));
  expect_bank_bit_identical(merged, serial);
}

INSTANTIATE_TEST_SUITE_P(
    ShardsAndRings, ShardedDeterminism,
    ::testing::Values(ShardedCase{1, 64}, ShardedCase{2, 8},
                      ShardedCase{4, 16}, ShardedCase{8, 64},
                      ShardedCase{8, ShardedRecorder::kDefaultRingCapacity}),
    [](const auto& info) {
      return "s" + std::to_string(info.param.shards) + "_ring" +
             std::to_string(info.param.ring_capacity);
    });

TEST(ShardedDeterminismTest, PoolAndInlineMergeBitIdentical) {
  // The per-sketch task fan-out must not change the arithmetic: merging on
  // a pool and merging inline produce the same bank, bit for bit.
  const auto stream = attack_heavy_stream(8000, 17);
  std::vector<std::unique_ptr<SketchBank>> banks;
  std::vector<SketchBank*> shards;
  for (unsigned i = 0; i < 4; ++i) {
    banks.push_back(std::make_unique<SketchBank>(cfg()));
    shards.push_back(banks.back().get());
  }
  {
    ShardedRecorder rec(shards);
    for (const auto& p : stream) rec.offer(p);
    rec.drain();
  }
  const std::span<const SketchBank* const> view(shards.data(), shards.size());
  SketchBank inline_merged(cfg()), pooled(cfg());
  inline_merged.merge_shards(view, nullptr);
  TaskPool pool(4);
  pooled.merge_shards(view, &pool);
  expect_bank_bit_identical(pooled, inline_merged);
}

TEST(ShardedDeterminismTest, HistoryAccumulatesAcrossMergedIntervals) {
  // Multi-interval equivalence: shards are per-interval accumulators (reset
  // after each merge) while the merged bank retains the cumulative SYN/ACK
  // service history — exactly the state a serially reused bank carries
  // through record -> process -> clear cycles.
  const auto interval1 = attack_heavy_stream(6000, 23);
  const auto interval2 = attack_heavy_stream(6000, 29);

  SketchBank serial(cfg());
  for (const auto& p : interval1) serial.record(p);
  serial.clear();  // keeps the SYN/ACK history, as the serial pipeline does
  for (const auto& p : interval2) serial.record(p);

  std::vector<std::unique_ptr<SketchBank>> banks;
  std::vector<SketchBank*> shards;
  for (unsigned i = 0; i < 4; ++i) {
    banks.push_back(std::make_unique<SketchBank>(cfg()));
    shards.push_back(banks.back().get());
  }
  const std::span<const SketchBank* const> view(shards.data(), shards.size());
  SketchBank merged(cfg());
  ShardedRecorder rec(shards);
  for (const auto& p : interval1) rec.offer(p);
  rec.drain();
  merged.merge_shards(view);
  for (SketchBank* s : shards) s->reset_all();
  for (const auto& p : interval2) rec.offer(p);
  rec.drain();
  merged.merge_shards(view);
  expect_bank_bit_identical(merged, serial);
}

TEST(ShardedRecorderTest, RebindSealsGenerationsExactly) {
  // Packets offered before rebind() land in the old shard generation,
  // packets after in the new one: each generation's merge matches a serial
  // bank fed only that side of the seal.
  const SketchBankConfig c = cfg();
  SketchBank serial_a(c), serial_b(c);
  feed_completed(serial_a, IPv4(10, 0, 0, 1), IPv4(10, 0, 0, 2), 80, 300);
  feed_hscan(serial_b, IPv4(7, 7, 7, 7), 445, 300);

  std::vector<std::unique_ptr<SketchBank>> banks;
  std::vector<SketchBank*> gen_a, gen_b;
  for (unsigned i = 0; i < 6; ++i) {
    banks.push_back(std::make_unique<SketchBank>(c));
    (i < 3 ? gen_a : gen_b).push_back(banks.back().get());
  }
  ShardedRecorder rec(gen_a, /*ring_capacity=*/16);
  feed_completed(rec, IPv4(10, 0, 0, 1), IPv4(10, 0, 0, 2), 80, 300);
  rec.rebind(gen_b);
  feed_hscan(rec, IPv4(7, 7, 7, 7), 445, 300);
  rec.drain();

  SketchBank merged_a(c), merged_b(c);
  merged_a.merge_shards(
      std::span<const SketchBank* const>(gen_a.data(), gen_a.size()));
  merged_b.merge_shards(
      std::span<const SketchBank* const>(gen_b.data(), gen_b.size()));
  expect_bank_bit_identical(merged_a, serial_a);
  expect_bank_bit_identical(merged_b, serial_b);
}

TEST(ShardedRecorderTest, TakeShardOpsAccountsEveryOpOnce) {
  const auto stream = attack_heavy_stream(5000, 31);
  std::vector<std::unique_ptr<SketchBank>> banks;
  std::vector<SketchBank*> shards;
  for (unsigned i = 0; i < 4; ++i) {
    banks.push_back(std::make_unique<SketchBank>(cfg()));
    shards.push_back(banks.back().get());
  }
  ShardedRecorder rec(shards);
  for (const auto& p : stream) rec.offer(p);
  rec.drain();
  const auto ops = rec.take_shard_ops();
  ASSERT_EQ(ops.size(), 4u);
  std::uint64_t total = 0, per_shard_sum = 0;
  for (std::uint64_t o : ops) total += o;
  for (const SketchBank* s : shards) per_shard_sum += s->packets_recorded();
  // Each op is dealt to exactly one shard; every stream packet is a SYN or
  // SYN-ACK so none are skipped at extraction.
  EXPECT_EQ(total, stream.size());
  EXPECT_EQ(per_shard_sum, stream.size());
  // The counter is a delta: a second take with no new traffic reads zero.
  for (std::uint64_t o : rec.take_shard_ops()) EXPECT_EQ(o, 0u);
}

TEST(ShardedRecorderTest, RejectsInvalidShardSets) {
  SketchBank a(cfg()), b(cfg());
  std::vector<SketchBank*> none;
  EXPECT_THROW(ShardedRecorder{none}, std::invalid_argument);
  std::vector<SketchBank*> two{&a, &b};
  ShardedRecorder rec(two);
  std::vector<SketchBank*> one{&a};
  EXPECT_THROW(rec.rebind(one), std::invalid_argument);
}

TEST(ShardMergeTest, RejectsAliasedAndMismatchedInputs) {
  SketchBank merged(cfg()), shard(cfg());
  // Destination aliasing a shard would read overwritten state.
  {
    std::vector<const SketchBank*> terms{&merged};
    EXPECT_THROW(merged.merge_shards(std::span<const SketchBank* const>(
                     terms.data(), terms.size())),
                 std::invalid_argument);
  }
  // Config mismatch (different seed => different hash rows) is not linear.
  SketchBankConfig other = cfg();
  other.seed = 43;
  SketchBank mismatched(other);
  {
    std::vector<const SketchBank*> terms{&mismatched};
    EXPECT_THROW(merged.merge_shards(std::span<const SketchBank* const>(
                     terms.data(), terms.size())),
                 std::invalid_argument);
  }
  // Empty shard set has no defined sum.
  EXPECT_THROW(
      merged.merge_shards(std::span<const SketchBank* const>()),
      std::invalid_argument);
  // A valid single-shard merge still works after the failed attempts.
  std::vector<const SketchBank*> ok{&shard};
  merged.merge_shards(
      std::span<const SketchBank* const>(ok.data(), ok.size()));
  EXPECT_EQ(merged.packets_recorded(), 0u);
}

}  // namespace
}  // namespace hifind
