// Backend-parametrized determinism suite: every SketchBackend must honor the
// SAME contracts the reference reversible backend shipped with —
//   * detection alerts bit-identical at every epoch thread count,
//   * shared-nothing shard recording + COMBINE merge bit-identical to serial
//     record() at every shard count (COMBINE linearity),
//   * budget truncation a pure function of (bank, config) — identical at
//     every thread count, and invisible when the budget never trips,
//   * serialize/deserialize round-trip through the HFB wire frames exact.
// Runs under TSan in CI (suite names are in the TSan filter).
//
// Set HIFIND_TEST_BACKEND=reversible|compact to restrict the suite to one
// backend (the CI backend-matrix dimension); unset runs both.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "../testing/synthetic.hpp"
#include "detect/hifind.hpp"
#include "detect/parallel_recorder.hpp"
#include "detect/sketch_bank.hpp"
#include "detect/sketch_wire.hpp"
#include "sketch/sketch_backend.hpp"

namespace hifind {
namespace {

using testing::feed_completed;
using testing::feed_flood;
using testing::feed_hscan;
using testing::feed_vscan;
using testing::syn_packet;
using testing::synack_packet;

class BackendDeterminism
    : public ::testing::TestWithParam<SketchBackendKind> {
 protected:
  void SetUp() override {
    // CI backend-matrix dimension: one job per backend.
    if (const char* only = std::getenv("HIFIND_TEST_BACKEND")) {
      if (sketch_backend_name(GetParam()) != only) {
        GTEST_SKIP() << "HIFIND_TEST_BACKEND=" << only;
      }
    }
  }

  SketchBankConfig bank_cfg() const {
    SketchBankConfig c;
    c.seed = 42;
    c.backend = GetParam();
    c.twod.x_buckets = 1u << 10;
    // Small compact shapes keep the suite fast under TSan without changing
    // any property being tested. Left at defaults on the reversible backend
    // so its frames stay on plain HFB2 (asserted by WireRoundTripIsExact).
    if (GetParam() == SketchBackendKind::kCompact) {
      c.ci48.bucket_bits = 10;
      c.ci64.bucket_bits = 10;
    }
    return c;
  }

  HifindDetectorConfig det_cfg(std::size_t epoch_threads,
                               const EpochBudget& budget = {}) const {
    HifindDetectorConfig c;
    c.interval_seconds = 60;
    c.syn_rate_threshold = 1.0;
    c.min_persist_intervals = 2;
    c.epoch_threads = epoch_threads;
    c.budget = budget;
    return c;
  }

  /// The epoch-determinism replay: 10 intervals of mixed attacks.
  std::vector<IntervalResult> replay(std::size_t epoch_threads,
                                     const EpochBudget& budget = {}) const {
    SketchBank bank(bank_cfg());
    HifindDetector detector(det_cfg(epoch_threads, budget));
    Pcg32 rng(7, 11);
    std::vector<IntervalResult> results;
    const IPv4 victim(129, 105, 1, 1);
    const IPv4 victim2(129, 105, 2, 2);
    for (std::uint64_t interval = 0; interval < 10; ++interval) {
      feed_completed(bank, IPv4(100, 1, 1, 1), victim, 80, 30);
      feed_completed(bank, IPv4(100, 1, 1, 2), victim2, 443, 30);
      feed_completed(bank, IPv4(100, 1, 1, 3), IPv4(129, 105, 1, 3), 22, 20);
      if (interval >= 2) {
        feed_flood(bank, victim, 80, 400, /*spoofed=*/true, rng);
      }
      if (interval >= 3 && interval <= 7) {
        feed_flood(bank, victim2, 443, 300, /*spoofed=*/false, rng,
                   IPv4(6, 6, 6, 6));
      }
      if (interval >= 4) {
        feed_hscan(bank, IPv4(7, 7, 7, 7), 445, 250);
        feed_vscan(bank, IPv4(8, 8, 8, 8), IPv4(129, 105, 9, 9), 250);
      }
      results.push_back(detector.process(bank, interval));
      bank.clear();
    }
    return results;
  }
};

void expect_identical(const std::vector<IntervalResult>& a,
                      const std::vector<IntervalResult>& b,
                      const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].raw, b[i].raw) << what << " raw, interval " << i;
    EXPECT_EQ(a[i].after_2d, b[i].after_2d)
        << what << " after_2d, interval " << i;
    EXPECT_EQ(a[i].final, b[i].final) << what << " final, interval " << i;
    EXPECT_EQ(a[i].epoch, b[i].epoch) << what << " epoch, interval " << i;
  }
}

void expect_bank_bit_identical(const SketchBank& a, const SketchBank& b) {
  EXPECT_EQ(a.packets_recorded(), b.packets_recorded());
  auto same = [](std::span<const double> x, std::span<const double> y) {
    ASSERT_EQ(x.size(), y.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      ASSERT_EQ(x[i], y[i]) << "counter " << i;
    }
  };
  same(a.rs_sip_dport().counters(), b.rs_sip_dport().counters());
  same(a.rs_dip_dport().counters(), b.rs_dip_dport().counters());
  same(a.rs_sip_dip().counters(), b.rs_sip_dip().counters());
  same(a.verif_sip_dport().counters(), b.verif_sip_dport().counters());
  same(a.os_dip_dport().counters(), b.os_dip_dport().counters());
  same(a.synack_history().counters(), b.synack_history().counters());
}

TEST_P(BackendDeterminism, ScenarioProducesAlerts) {
  // Guard against vacuous equality: the scenario must alert on EVERY
  // backend (heavy-key recall through the full pipeline).
  const auto serial = replay(/*epoch_threads=*/1);
  std::size_t raw = 0, fin = 0;
  for (const auto& r : serial) {
    raw += r.raw.size();
    fin += r.final.size();
  }
  EXPECT_GT(raw, 0u);
  EXPECT_GT(fin, 0u);
}

TEST_P(BackendDeterminism, AlertsBitIdenticalAcrossEpochThreadCounts) {
  const auto serial = replay(/*epoch_threads=*/1);
  expect_identical(serial, replay(2), "2 threads");
  expect_identical(serial, replay(4), "4 threads");
  expect_identical(serial, replay(8), "8 threads");
}

TEST_P(BackendDeterminism, BudgetTruncationPureAcrossThreadCounts) {
  // A budget tight enough to truncate: the truncated alert stream must be
  // the same pure function of (bank, config) at every thread count.
  EpochBudget tight;
  tight.deadline_ms = 1.0;
  // The compact backend's REVERSE retires so little work that the
  // reversible-calibrated cap never trips — tighten until it does; the
  // property under test is purity of the truncation point, not its value.
  tight.work_units_per_ms =
      GetParam() == SketchBackendKind::kCompact ? 40.0 : 600.0;
  tight.max_heavy_per_stage = 4;
  const auto serial = replay(/*epoch_threads=*/1, tight);
  bool any_truncated = false;
  for (const auto& r : serial) any_truncated |= r.epoch.truncated;
  EXPECT_TRUE(any_truncated) << "budget never tripped — test is vacuous";
  expect_identical(serial, replay(2, tight), "2 threads");
  expect_identical(serial, replay(4, tight), "4 threads");
  expect_identical(serial, replay(8, tight), "8 threads");

  // And a budget that never trips is invisible.
  EpochBudget loose;
  loose.deadline_ms = 1e6;
  const auto unbudgeted = replay(/*epoch_threads=*/1);
  const auto loose_run = replay(/*epoch_threads=*/1, loose);
  ASSERT_EQ(unbudgeted.size(), loose_run.size());
  for (std::size_t i = 0; i < unbudgeted.size(); ++i) {
    EXPECT_EQ(unbudgeted[i].raw, loose_run[i].raw) << "interval " << i;
    EXPECT_EQ(unbudgeted[i].final, loose_run[i].final) << "interval " << i;
  }
}

TEST_P(BackendDeterminism, ShardMergeBitIdenticalToSerialRecording) {
  // COMBINE linearity end-to-end: shared-nothing shard replicas reduced at
  // seal equal serial record() of the same stream, bit for bit, at every
  // shard count.
  Pcg32 rng(0xacedULL);
  std::vector<PacketRecord> stream;
  const IPv4 victim(129, 105, 1, 1);
  for (int i = 0; i < 12000; ++i) {
    const std::uint32_t roll = rng.bounded(10);
    if (roll < 4) {
      const IPv4 client{rng.next()};
      const auto sport =
          static_cast<std::uint16_t>(1024 + rng.bounded(60000));
      stream.push_back(syn_packet(i, client, victim, 443, sport));
      stream.push_back(synack_packet(i, victim, 443, client, sport));
    } else if (roll < 8) {
      stream.push_back(
          syn_packet(i, IPv4{rng.next()}, victim, 80,
                     static_cast<std::uint16_t>(rng.bounded(60000))));
    } else {
      stream.push_back(syn_packet(
          i, IPv4(7, 7, 7, 7), IPv4{0x81690000u | (rng.next() & 0xffffu)},
          445));
    }
  }

  SketchBank serial(bank_cfg());
  for (const auto& p : stream) serial.record(p);

  for (const unsigned num_shards : {1u, 2u, 4u, 8u}) {
    std::vector<std::unique_ptr<SketchBank>> banks;
    std::vector<SketchBank*> shards;
    for (unsigned i = 0; i < num_shards; ++i) {
      banks.push_back(std::make_unique<SketchBank>(bank_cfg()));
      shards.push_back(banks.back().get());
    }
    {
      ShardedRecorder rec(shards, /*ring_capacity=*/64);
      for (const auto& p : stream) rec.offer(p);
      rec.drain();
    }
    SketchBank merged(bank_cfg());
    merged.merge_shards(
        std::span<const SketchBank* const>(shards.data(), shards.size()));
    SCOPED_TRACE(std::to_string(num_shards) + " shards");
    expect_bank_bit_identical(merged, serial);
  }
}

TEST_P(BackendDeterminism, WireRoundTripIsExact) {
  SketchBank bank(bank_cfg());
  Pcg32 rng(5);
  const IPv4 victim(129, 105, 1, 1);
  feed_completed(bank, IPv4(100, 1, 1, 1), victim, 80, 40);
  feed_flood(bank, victim, 80, 500, /*spoofed=*/true, rng);
  feed_hscan(bank, IPv4(7, 7, 7, 7), 445, 200);

  const auto bytes = serialize_frame(bank, /*router_id=*/3, /*interval=*/17);
  const BankFrame frame = deserialize_frame(bytes);
  EXPECT_EQ(frame.router_id, 3u);
  EXPECT_EQ(frame.interval, 17u);
  // The reversible backend stays on byte-compatible HFB2; only the compact
  // backend needs the extended HFB3 config block.
  const std::uint8_t expect_version =
      GetParam() == SketchBackendKind::kReversible ? 2 : 3;
  EXPECT_EQ(frame.version, expect_version);
  EXPECT_EQ(frame.bank.config(), bank.config());
  expect_bank_bit_identical(frame.bank, bank);

  // Round-tripped banks must still COMBINE with the original (config
  // equality is the combinability contract).
  SketchBank sum(bank.config());
  const std::vector<std::pair<double, const SketchBank*>> terms = {
      {1.0, &bank}, {1.0, &frame.bank}};
  sum.combine_into(std::span<const std::pair<double, const SketchBank*>>(
      terms.data(), terms.size()));
  EXPECT_EQ(sum.packets_recorded(), 2 * bank.packets_recorded());
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendDeterminism,
                         ::testing::Values(SketchBackendKind::kReversible,
                                           SketchBackendKind::kCompact),
                         [](const auto& info) {
                           return std::string(
                               sketch_backend_name(info.param));
                         });

}  // namespace
}  // namespace hifind
