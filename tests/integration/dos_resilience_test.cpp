// DoS-resilience (paper Sec. 3.5): a massive spoofed stream must neither
// grow HiFIND's memory nor mask a concurrent real attack — while TRW's state
// balloons and TRW-AC's cache aliases.
#include <gtest/gtest.h>

#include "baseline/trw.hpp"
#include "baseline/trw_ac.hpp"
#include "detect/hifind.hpp"
#include "detect/sketch_bank.hpp"

#include "../testing/synthetic.hpp"

namespace hifind {
namespace {

using testing::feed_completed;
using testing::feed_flood;
using testing::feed_hscan;
using testing::syn_packet;

SketchBankConfig bank_cfg() {
  SketchBankConfig c;
  c.seed = 42;
  c.twod.x_buckets = 1u << 10;
  return c;
}

HifindDetectorConfig det_cfg() {
  HifindDetectorConfig c;
  c.min_persist_intervals = 1;
  return c;
}

TEST(DosResilienceTest, HifindMemoryConstantUnderSpoofedStorm) {
  SketchBank bank(bank_cfg());
  const std::size_t before = bank.memory_bytes();
  Pcg32 rng(1);
  feed_flood(bank, IPv4(129, 105, 1, 1), 80, 100000, /*spoofed=*/true, rng);
  EXPECT_EQ(bank.memory_bytes(), before);
}

TEST(DosResilienceTest, ScanStillDetectedDuringSpoofedStorm) {
  SketchBank bank(bank_cfg());
  HifindDetector det(det_cfg());
  Pcg32 rng(2);

  auto baseline = [&] {
    feed_completed(bank, IPv4(100, 1, 1, 1), IPv4(129, 105, 1, 1), 443, 30);
  };
  baseline();
  det.process(bank, 0);
  bank.clear();

  baseline();
  // 50k spoofed SYNs to RANDOM internal destinations (the TRW-AC poisoning
  // pattern) + one real horizontal scan of 300 targets.
  for (int i = 0; i < 50000; ++i) {
    bank.record(syn_packet(i, IPv4{rng.next()},
                           IPv4{0x8aa10000u | (rng.next() & 0xffff)},
                           static_cast<std::uint16_t>(rng.bounded(1024))));
  }
  const IPv4 scanner(6, 6, 6, 6);
  feed_hscan(bank, scanner, 445, 300);
  const IntervalResult r = det.process(bank, 1);

  bool scanner_found = false;
  for (const Alert& a : r.final) {
    if (a.type == AttackType::kHorizontalScan && a.sip() == scanner) {
      scanner_found = true;
    }
  }
  EXPECT_TRUE(scanner_found)
      << "spoofed noise spreads thin across buckets; the scan's {SIP,Dport} "
         "mass must still stand out";
}

TEST(DosResilienceTest, TrwStateExplodesWhereHifindIsFlat) {
  Trw trw{TrwConfig{}};
  SketchBank bank(bank_cfg());
  const std::size_t hifind_mem = bank.memory_bytes();
  Pcg32 rng(3);
  auto storm = [&](int packets) {
    for (int i = 0; i < packets; ++i) {
      const auto p =
          syn_packet(i, IPv4{rng.next()},
                     IPv4{0x8aa10000u | (rng.next() & 0xffff)}, 80);
      trw.observe(p);
      bank.record(p);
    }
  };
  storm(100000);
  const std::size_t trw_at_100k = trw.memory_bytes();
  storm(400000);
  // HiFIND: flat. TRW: linear in distinct spoofed sources.
  EXPECT_EQ(bank.memory_bytes(), hifind_mem);
  EXPECT_GT(trw.memory_bytes(), 4 * trw_at_100k)
      << "5x the spoofed packets must cost ~5x the TRW state";
  EXPECT_GT(trw.memory_bytes(), hifind_mem)
      << "half a million spoofed sources already dwarf the sketch bank";
}

TEST(DosResilienceTest, CollisionAttackNeedsTheSecretSeed) {
  // Paper Sec. 3.5: to create sketch collisions the attacker must reverse
  // engineer the hash functions. Simulate the strongest realistic attacker:
  // one who obtained a full HiFIND build and brute-forces keys that collide
  // with a victim's bucket in THEIR copy (wrong seed). Against the deployed
  // seed those keys spread like any other traffic; against a compromised
  // seed they do concentrate — quantifying exactly why the seed is the
  // secret.
  const ReversibleSketchConfig deployed_cfg{.key_bits = 48, .num_stages = 6,
                                            .bucket_bits = 12, .seed = 1234};
  const ReversibleSketchConfig attacker_cfg{.key_bits = 48, .num_stages = 6,
                                            .bucket_bits = 12, .seed = 9999};
  ReversibleSketch deployed(deployed_cfg);
  ReversibleSketch attacker_copy(attacker_cfg);

  const std::uint64_t victim_key = pack_ip_port(IPv4(129, 105, 1, 1), 80);
  // Attacker brute-forces 200 keys colliding with the victim in stage 0 of
  // THEIR copy.
  std::vector<std::uint64_t> crafted;
  const std::size_t target_bucket = attacker_copy.bucket_of(0, victim_key);
  for (std::uint64_t k = 0; crafted.size() < 200; ++k) {
    if (attacker_copy.bucket_of(0, k) == target_bucket) crafted.push_back(k);
  }
  // Fire each crafted key once at the deployed sketch.
  for (const std::uint64_t k : crafted) deployed.update(k, 1.0);

  // In the deployed sketch the crafted keys spread: the victim's bucket got
  // only its fair share, nowhere near an anomaly.
  EXPECT_LT(deployed.bucket_value(0, deployed.bucket_of(0, victim_key)), 10.0)
      << "wrong-seed collisions must not concentrate";

  // Control: with the REAL seed the same attack does concentrate — the seed,
  // not obscurity of the algorithm, is what carries the resilience.
  ReversibleSketch informed(deployed_cfg);
  std::vector<std::uint64_t> insider;
  const std::size_t real_bucket = informed.bucket_of(0, victim_key);
  for (std::uint64_t k = 0; insider.size() < 200; ++k) {
    if (informed.bucket_of(0, k) == real_bucket) insider.push_back(k);
  }
  for (const std::uint64_t k : insider) informed.update(k, 1.0);
  EXPECT_NEAR(informed.bucket_value(0, real_bucket), 200.0, 1e-9);
}

TEST(DosResilienceTest, SpoofedFloodToOneTargetReportedAsFlood) {
  // Sec 3.5: "if an attacker sends source-spoofed SYNs to a fixed
  // destination, our system will treat this as a SYN flooding attack".
  SketchBank bank(bank_cfg());
  HifindDetector det(det_cfg());
  Pcg32 rng(4);
  feed_completed(bank, IPv4(100, 1, 1, 1), IPv4(129, 105, 1, 1), 443, 30);
  det.process(bank, 0);
  bank.clear();
  feed_completed(bank, IPv4(100, 1, 1, 1), IPv4(129, 105, 1, 1), 443, 30);
  feed_flood(bank, IPv4(129, 105, 1, 1), 443, 5000, true, rng);
  const IntervalResult r = det.process(bank, 1);
  EXPECT_GE(IntervalResult::count(r.final, AttackType::kSynFlooding), 1u);
}

}  // namespace
}  // namespace hifind
