// End-to-end overload fault injection (ISSUE acceptance scenario): drive the
// overlapped pipeline through the OverloadInjector's three scenarios —
// traffic bursts beyond ring capacity, slow-consumer epochs, shed/restore
// cycles — and assert the overload layer's contract: shed decisions are
// deterministic (bit-identical runs), coverage never falls below the
// configured floor, real attacks survive shedding AND refinement, and close
// stall stays bounded.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "detect/overlapped.hpp"
#include "detect/overload_injector.hpp"

namespace hifind {
namespace {

using Kind = OverloadScenarioConfig::Kind;

constexpr std::size_t kRing = 1024;

SketchBankConfig bank_cfg() {
  SketchBankConfig c;
  c.seed = 42;
  c.twod.x_buckets = 1u << 10;
  return c;
}

OverlappedPipelineConfig pipe_cfg(std::uint64_t shed_budget,
                                  std::uint64_t epoch_stall_us = 0) {
  OverlappedPipelineConfig c;
  c.bank = bank_cfg();
  c.detector.interval_seconds = 60;
  c.detector.syn_rate_threshold = 1.0;
  c.detector.min_persist_intervals = 2;
  c.record_threads = 2;
  c.ring_capacity = kRing;
  c.shed.budget_ops_per_interval = shed_budget;
  c.inject_epoch_stall_us = epoch_stall_us;
  return c;
}

OverloadScenarioConfig scenario_cfg(Kind kind, std::uint64_t intervals) {
  OverloadScenarioConfig c;
  c.kind = kind;
  c.intervals = intervals;
  c.ring_capacity = kRing;  // burst = 4 * 1024 attack SYNs
  return c;
}

OverloadRun run_scenario(const OverloadScenarioConfig& sc,
                         const OverlappedPipelineConfig& pc) {
  OverlappedPipeline pipe(pc);
  OverloadInjector injector(sc);
  return injector.run(pipe);
}

void expect_identical_runs(const OverloadRun& a, const OverloadRun& b,
                           const char* what) {
  ASSERT_EQ(a.intervals.size(), b.intervals.size()) << what;
  for (std::size_t i = 0; i < a.intervals.size(); ++i) {
    EXPECT_EQ(a.intervals[i].attack_syns, b.intervals[i].attack_syns)
        << what << " interval " << i;
    EXPECT_EQ(a.intervals[i].shed_level_after, b.intervals[i].shed_level_after)
        << what << " interval " << i;
  }
  ASSERT_EQ(a.results.size(), b.results.size()) << what;
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].final, b.results[i].final)
        << what << " final, interval " << i;
    EXPECT_EQ(a.results[i].refined, b.results[i].refined)
        << what << " refined, interval " << i;
    EXPECT_EQ(a.results[i].refinement, b.results[i].refinement)
        << what << " refinement, interval " << i;
    EXPECT_EQ(a.results[i].coverage.sample_coverage,
              b.results[i].coverage.sample_coverage)
        << what << " coverage, interval " << i;
    EXPECT_EQ(a.results[i].coverage.shed_level_max,
              b.results[i].coverage.shed_level_max)
        << what << " level_max, interval " << i;
  }
}

bool victim_in(const std::vector<Alert>& alerts,
               const OverloadScenarioConfig& sc) {
  const std::uint64_t key = pack_ip_port(sc.victim, sc.victim_port);
  for (const Alert& a : alerts) {
    if (a.type == AttackType::kSynFlooding && a.key == key) return true;
  }
  return false;
}

TEST(OverloadInjection, BurstBeyondRingsShedsDeterministicallyAndStillAlerts) {
  // 4x ring capacity every post-warm-up interval against a 2048-op budget:
  // the shedder must escalate to level 2, keep coverage above the floor,
  // and the victim flood must survive both shedding and refinement. Two
  // independent runs must agree bit-for-bit — the shed decision depends on
  // the stream, never on scheduling.
  const auto sc = scenario_cfg(Kind::kBurstBeyondRings, 6);
  const auto pc = pipe_cfg(/*shed_budget=*/2048);
  const OverloadRun run = run_scenario(sc, pc);

  ASSERT_EQ(run.results.size(), 6u);
  EXPECT_FALSE(run.results[0].coverage.shed) << "warm-up interval shed";
  bool victim_refined = false;
  std::size_t shed_intervals = 0;
  for (const IntervalResult& r : run.results) {
    if (r.coverage.shed) {
      ++shed_intervals;
      EXPECT_GE(r.coverage.sample_coverage, pc.shed.min_coverage())
          << "interval " << r.interval;
      EXPECT_EQ(r.coverage.shed_level_max, 2u)
          << "interval " << r.interval;  // 4224 offered vs 2048 budget
    }
    victim_refined |= victim_in(r.refined, sc);
  }
  EXPECT_EQ(shed_intervals, 5u) << "every attack interval must shed";
  EXPECT_TRUE(victim_refined) << "flood victim lost under shedding";
  // min_persist=2 and the refinement lag both honored: by the last interval
  // the victim must be CONFIRMED with exact-flow evidence, not just kept.
  std::size_t confirmed = 0;
  for (const IntervalResult& r : run.results) confirmed += r.refinement.confirmed;
  EXPECT_GT(confirmed, 0u) << "refinement never confirmed the flood";
  // Bounded stall: generous wall-clock bound — the contract is "does not
  // grow with offered load", which the bench pins more tightly.
  EXPECT_LT(run.total_close_stall_us, 10'000'000u);

  expect_identical_runs(run, run_scenario(sc, pc), "burst rerun");
}

TEST(OverloadInjection, SlowConsumerEpochsAreAbsorbedAsBoundedStall) {
  // Every epoch is made ~30 ms slow via the injected stall; ingest is far
  // faster, so each close waits on the previous epoch. The stall must be
  // visible in close_stall_us, bounded, and purely scheduling: alerts are
  // bit-identical to the run without the fault.
  const auto sc = scenario_cfg(Kind::kSlowConsumerEpochs, 8);
  const OverloadRun slow =
      run_scenario(sc, pipe_cfg(/*shed_budget=*/0, /*epoch_stall_us=*/30000));
  const OverloadRun fast = run_scenario(sc, pipe_cfg(/*shed_budget=*/0));

  // 7 of the 8 closes wait out most of a 30 ms epoch stall.
  EXPECT_GT(slow.total_close_stall_us, 100'000u) << "stall never surfaced";
  EXPECT_LT(slow.total_close_stall_us, 30'000'000u) << "stall unbounded";
  ASSERT_EQ(slow.results.size(), fast.results.size());
  for (std::size_t i = 0; i < slow.results.size(); ++i) {
    EXPECT_EQ(slow.results[i].final, fast.results[i].final)
        << "slow-consumer fault changed alerts, interval " << i;
    EXPECT_EQ(slow.results[i].refined, fast.results[i].refined)
        << "interval " << i;
    // No shedding configured: the fault must not fake degraded coverage.
    EXPECT_FALSE(slow.results[i].coverage.shed);
    EXPECT_EQ(slow.results[i].coverage.sample_coverage, 1.0);
  }
}

TEST(OverloadInjection, ShedRestoreCyclesFollowLoadWithHysteresis) {
  // heavy,heavy,quiet,quiet after a warm-up: the level must escalate under
  // each burst pair and the seal-time hysteresis must walk it back to zero
  // across each quiet pair — and the whole trajectory must reproduce.
  const auto sc = scenario_cfg(Kind::kShedRestoreCycles, 9);
  const auto pc = pipe_cfg(/*shed_budget=*/2048);
  const OverloadRun run = run_scenario(sc, pc);

  ASSERT_EQ(run.intervals.size(), 9u);
  // i=0 warm-up; i=1,2 and 5,6 heavy; i=3,4 and 7,8 quiet.
  EXPECT_EQ(run.intervals[0].shed_level_after, 0u);
  for (const std::size_t heavy : {1u, 2u, 5u, 6u}) {
    EXPECT_GT(run.intervals[heavy].attack_syns, 0u);
    EXPECT_GE(run.intervals[heavy].shed_level_after, 1u)
        << "burst interval " << heavy << " did not hold a shed level";
    EXPECT_GE(run.results[heavy].coverage.shed_level_max, 2u)
        << "burst interval " << heavy;
  }
  for (const std::size_t second_quiet : {4u, 8u}) {
    EXPECT_EQ(run.intervals[second_quiet].attack_syns, 0u);
    EXPECT_EQ(run.intervals[second_quiet].shed_level_after, 0u)
        << "hysteresis never restored full coverage by interval "
        << second_quiet;
    EXPECT_EQ(run.results[second_quiet].coverage.sample_coverage, 1.0);
  }

  expect_identical_runs(run, run_scenario(sc, pc), "shed/restore rerun");
}

}  // namespace
}  // namespace hifind
