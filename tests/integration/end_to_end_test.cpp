// End-to-end: synthetic scenario -> pipeline -> ground-truth evaluation.
#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "core/pipeline.hpp"
#include "gen/scenario.hpp"

namespace hifind {
namespace {

PipelineConfig pipe_cfg() {
  PipelineConfig c;
  c.bank.seed = 42;
  c.detector.interval_seconds = 60;
  c.detector.syn_rate_threshold = 1.0;
  return c;
}

TEST(EndToEndTest, NuLikeScenarioDetectedWithHighRecallAndPrecision) {
  const Scenario scenario = build_scenario(nu_like_config(21, 900));
  Pipeline pipeline(pipe_cfg());
  const auto results = pipeline.run(scenario.trace);
  const EvaluationSummary s =
      evaluate(results, scenario.truth, IntervalClock(60));

  EXPECT_GE(s.event_recall(), 0.8)
      << "most injected attacks must be caught (detected "
      << s.attack_events_detected << "/" << s.attack_events << ")";
  EXPECT_LE(s.alerts_unexplained,
            s.alerts_total / 10 + 2)
      << "unexplained false positives must be rare";
}

TEST(EndToEndTest, PhasesMonotonicallyRefineAlerts) {
  const Scenario scenario = build_scenario(nu_like_config(22, 600));
  Pipeline pipeline(pipe_cfg());
  const auto results = pipeline.run(scenario.trace);
  std::size_t raw = 0, after_2d = 0, final_count = 0;
  for (const auto& r : results) {
    raw += r.raw.size();
    after_2d += r.after_2d.size();
    final_count += r.final.size();
    EXPECT_LE(r.after_2d.size(), r.raw.size());
    EXPECT_LE(r.final.size(), r.after_2d.size());
  }
  EXPECT_GT(raw, 0u);
  EXPECT_GT(final_count, 0u);
}

TEST(EndToEndTest, LblLikeScenarioYieldsNoFinalFloodAlerts) {
  // The Table 4/6 LBL property: scans galore, zero (or near-zero) flood
  // alerts after Phase 3, because there are no real floods.
  const Scenario scenario = build_scenario(lbl_like_config(23, 900));
  Pipeline pipeline(pipe_cfg());
  const auto results = pipeline.run(scenario.trace);
  std::size_t final_floods = 0, final_hscans = 0;
  for (const auto& r : results) {
    final_floods += IntervalResult::count(r.final, AttackType::kSynFlooding);
    final_hscans +=
        IntervalResult::count(r.final, AttackType::kHorizontalScan);
  }
  EXPECT_EQ(final_floods, 0u);
  EXPECT_GT(final_hscans, 0u) << "the scans themselves must be found";
}

TEST(EndToEndTest, ScanAlertsCarryActionableKeys) {
  const Scenario scenario = build_scenario(nu_like_config(24, 600));
  Pipeline pipeline(pipe_cfg());
  const auto results = pipeline.run(scenario.trace);
  const auto matched =
      match_alerts(results, scenario.truth, IntervalClock(60));
  std::size_t scan_alerts = 0, scan_alerts_matching_attacker = 0;
  for (const auto& m : matched) {
    if (m.alert.type != AttackType::kHorizontalScan) continue;
    ++scan_alerts;
    if (m.cause && m.cause->sip &&
        m.cause->sip->addr == m.alert.sip().addr) {
      ++scan_alerts_matching_attacker;
    }
  }
  ASSERT_GT(scan_alerts, 0u);
  EXPECT_GE(scan_alerts_matching_attacker * 10, scan_alerts * 9)
      << "reverse sketches must recover the true attacker IP";
}

}  // namespace
}  // namespace hifind
