// Paper Sec. 5.2: the sketch-based detector and the exact flow-table
// detector, run with the same algorithm and thresholds on the same trace,
// must detect (essentially) the same attacks — at wildly different memory.
#include <gtest/gtest.h>

#include <set>

#include "baseline/flow_table.hpp"
#include "core/pipeline.hpp"
#include "gen/scenario.hpp"

namespace hifind {
namespace {

/// Set of (type, key) pairs across the run's final alerts.
std::set<std::pair<int, std::uint64_t>> alert_keys(
    const std::vector<IntervalResult>& results) {
  std::set<std::pair<int, std::uint64_t>> keys;
  for (const auto& r : results) {
    for (const auto& a : r.final) {
      keys.insert({static_cast<int>(a.type), a.key});
    }
  }
  return keys;
}

TEST(SketchVsExactTest, SameAttacksDetected) {
  const Scenario scenario = build_scenario(nu_like_config(41, 600));

  PipelineConfig pc;
  pc.bank.seed = 42;
  pc.detector.interval_seconds = 60;
  Pipeline sketch_pipe(pc);
  const auto sketch_results = sketch_pipe.run(scenario.trace);

  FlowTableDetector exact(pc.detector);
  std::vector<IntervalResult> exact_results;
  IntervalClock clock(60);
  std::uint64_t current = 0;
  bool any = false;
  std::size_t peak_exact_memory = 0;
  for (const auto& p : scenario.trace.packets()) {
    const std::uint64_t iv = clock.interval_of(p.ts);
    if (!any) {
      current = iv;
      any = true;
    }
    while (current < iv) {
      peak_exact_memory = std::max(peak_exact_memory, exact.memory_bytes());
      exact_results.push_back(exact.end_interval(current++));
    }
    exact.observe(p);
  }
  exact_results.push_back(exact.end_interval(current));

  const auto sketch_keys = alert_keys(sketch_results);
  const auto exact_keys = alert_keys(exact_results);

  // Jaccard overlap of detected (type, key) pairs. The paper reports perfect
  // agreement; we allow a small tolerance for keys riding the threshold.
  std::size_t common = 0;
  for (const auto& k : sketch_keys) common += exact_keys.contains(k) ? 1 : 0;
  const std::size_t unions =
      sketch_keys.size() + exact_keys.size() - common;
  ASSERT_GT(unions, 0u);
  EXPECT_GE(static_cast<double>(common) / static_cast<double>(unions), 0.9)
      << "sketch=" << sketch_keys.size() << " exact=" << exact_keys.size()
      << " common=" << common;
}

TEST(SketchVsExactTest, SketchMemoryOrdersOfMagnitudeSmallerUnderFlood) {
  // Under a heavy spoofed flood the exact tables balloon; sketches don't.
  ScenarioConfig cfg = nu_like_config(42, 300);
  cfg.num_spoofed_floods = 3;
  const Scenario scenario = build_scenario(cfg);

  PipelineConfig pc;
  pc.bank.seed = 42;
  SketchBank bank(pc.bank);
  FlowTableDetector exact(pc.detector);
  std::size_t peak_exact = 0;
  IntervalClock clock(60);
  std::uint64_t current = 0;
  for (const auto& p : scenario.trace.packets()) {
    const std::uint64_t iv = clock.interval_of(p.ts);
    while (current < iv) {
      peak_exact = std::max(peak_exact, exact.memory_bytes());
      exact.end_interval(current++);
      bank.clear();
    }
    exact.observe(p);
    bank.record(p);
  }
  EXPECT_GT(peak_exact, 0u);
  // The sketch bank in full paper shape is ~26MB of doubles; exact tables on
  // this scaled-down trace are smaller in absolute terms, so compare
  // per-flow growth instead: exact memory grows with traffic, sketches are
  // constant by construction.
  EXPECT_EQ(bank.memory_bytes(), SketchBank(pc.bank).memory_bytes());
}

}  // namespace
}  // namespace hifind
