// Sec. 5.3.2 as an integration test: split a full scenario over 3 routers
// with per-packet load balancing; aggregated detection must equal the
// single-router run EXACTLY (sketch linearity), while TRW run per-router and
// summed degrades.
#include <gtest/gtest.h>

#include "baseline/trw.hpp"
#include "core/evaluation.hpp"
#include "core/pipeline.hpp"
#include "gen/scenario.hpp"
#include "detect/sketch_wire.hpp"
#include "router/distributed.hpp"

namespace hifind {
namespace {

SketchBankConfig bank_cfg() {
  SketchBankConfig c;
  c.seed = 42;
  return c;
}

HifindDetectorConfig det_cfg() {
  HifindDetectorConfig c;
  c.interval_seconds = 60;
  return c;
}

TEST(MultiRouterTest, AggregatedAlertsIdenticalToSingleRouter) {
  const Scenario scenario = build_scenario(nu_like_config(31, 600));

  // Single-router reference.
  PipelineConfig pc;
  pc.bank = bank_cfg();
  pc.detector = det_cfg();
  Pipeline single(pc);
  const auto ref = single.run(scenario.trace);

  // Three routers, per-packet random split.
  DistributedMonitor mon(3, bank_cfg(), det_cfg());
  IntervalClock clock(60);
  std::vector<IntervalResult> agg;
  std::uint64_t current = 0;
  bool any = false;
  for (const auto& p : scenario.trace.packets()) {
    const std::uint64_t iv = clock.interval_of(p.ts);
    if (!any) {
      current = iv;
      any = true;
    }
    while (current < iv) {
      agg.push_back(mon.end_interval(current++));
    }
    mon.feed(p);
  }
  agg.push_back(mon.end_interval(current));

  ASSERT_EQ(agg.size(), ref.size());
  for (std::size_t i = 0; i < agg.size(); ++i) {
    ASSERT_EQ(agg[i].final.size(), ref[i].final.size()) << "interval " << i;
    for (std::size_t j = 0; j < agg[i].final.size(); ++j) {
      EXPECT_EQ(agg[i].final[j].type, ref[i].final[j].type);
      EXPECT_EQ(agg[i].final[j].key, ref[i].final[j].key);
      EXPECT_NEAR(agg[i].final[j].magnitude, ref[i].final[j].magnitude, 1e-6);
    }
  }
}

TEST(MultiRouterTest, DetectionOverShippedBanksMatchesLocal) {
  // The full distributed loop including the wire: routers serialize their
  // banks, the central site deserializes, COMBINEs, and detects — results
  // must equal an all-local run.
  SketchBankConfig cfg;
  cfg.seed = 42;
  HifindDetectorConfig det_cfg;
  det_cfg.min_persist_intervals = 1;

  SketchBank r1(cfg), r2(cfg), local(cfg);
  HifindDetector det_shipped(det_cfg), det_local(det_cfg);
  Pcg32 rng(5);

  auto run_interval = [&](bool flood, std::uint64_t idx) {
    for (int i = 0; i < 60; ++i) {
      PacketRecord syn;
      syn.ts = i;
      syn.sip = IPv4{0x64000000u + static_cast<std::uint32_t>(i)};
      syn.dip = IPv4(129, 105, 1, 1);
      syn.sport = static_cast<std::uint16_t>(20000 + i);
      syn.dport = 443;
      syn.flags = kSyn;
      PacketRecord synack;
      synack.ts = i;
      synack.sip = syn.dip;
      synack.dip = syn.sip;
      synack.sport = 443;
      synack.dport = syn.sport;
      synack.flags = kSyn | kAck;
      synack.outbound = true;
      (rng.chance(0.5) ? r1 : r2).record(syn);
      (rng.chance(0.5) ? r1 : r2).record(synack);
      local.record(syn);
      local.record(synack);
    }
    if (flood) {
      for (int i = 0; i < 400; ++i) {
        PacketRecord p;
        p.ts = 1000 + i;
        p.sip = IPv4{rng.next()};
        p.dip = IPv4(129, 105, 1, 1);
        p.sport = static_cast<std::uint16_t>(1024 + i);
        p.dport = 443;
        p.flags = kSyn;
        (rng.chance(0.5) ? r1 : r2).record(p);
        local.record(p);
      }
    }
    // Ship both banks as bytes, reconstruct, combine.
    SketchBank shipped1 = deserialize_bank(serialize_bank(r1));
    SketchBank shipped2 = deserialize_bank(serialize_bank(r2));
    shipped1.accumulate(shipped2);
    const IntervalResult agg = det_shipped.process(shipped1, idx);
    const IntervalResult ref = det_local.process(local, idx);
    r1.clear();
    r2.clear();
    local.clear();
    return std::make_pair(agg, ref);
  };

  run_interval(false, 0);
  const auto [agg, ref] = run_interval(true, 1);
  ASSERT_GE(ref.final.size(), 1u);
  ASSERT_EQ(agg.final.size(), ref.final.size());
  for (std::size_t i = 0; i < agg.final.size(); ++i) {
    EXPECT_EQ(agg.final[i].key, ref.final[i].key);
    EXPECT_NEAR(agg.final[i].magnitude, ref.final[i].magnitude, 1e-9);
  }
}

TEST(MultiRouterTest, PerRouterTrwDegradesUnderSplit) {
  // TRW needs to see a connection's SYN and SYN/ACK at the SAME vantage
  // point; a per-packet split sends them to different routers 2/3 of the
  // time, so benign traffic turns into apparent failures (false positives).
  const ScenarioConfig cfg = [] {
    ScenarioConfig c = nu_like_config(32, 600);
    c.num_hscans = 0;  // pure benign: any TRW alert is a false positive
    c.num_vscans = 0;
    c.num_block_scans = 0;
    c.num_spoofed_floods = 0;
    c.num_fixed_floods = 0;
    c.num_misconfigs = 0;
    c.num_flash_crowds = 0;
    c.num_server_failures = 0;
    return c;
  }();
  const Scenario scenario = build_scenario(cfg);

  // Whole-traffic TRW as reference.
  Trw whole{TrwConfig{}};
  // Per-router TRWs under per-packet load balancing.
  std::vector<Trw> split;
  for (int i = 0; i < 3; ++i) split.emplace_back(TrwConfig{});
  PacketSplitter splitter(3, 5);

  for (const auto& p : scenario.trace.packets()) {
    whole.observe(p);
    split[splitter.route(p)].observe(p);
  }
  const Timestamp end = scenario.trace.stats().last_ts + 61 * kMicrosPerSecond;
  whole.flush(end);
  std::size_t split_alerts = 0;
  for (auto& t : split) {
    t.flush(end);
    split_alerts += t.alerts().size();
  }

  EXPECT_GT(split_alerts, whole.alerts().size() + 5)
      << "splitting must inflate TRW false positives (benign-only trace)";
}

}  // namespace
}  // namespace hifind
