// Interop integration: a scenario exported as NetFlow v5 (the paper's actual
// input format) and re-imported must yield the same detected attacks.
// NetFlow keeps millisecond timestamps, so interval-edge packets can shift
// by <1ms; we compare the detected (type, key) sets rather than per-interval
// magnitudes.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "core/pipeline.hpp"
#include "gen/scenario.hpp"
#include "packet/netflow_v5.hpp"

namespace hifind {
namespace {

std::set<std::pair<int, std::uint64_t>> alert_keys(
    const std::vector<IntervalResult>& results) {
  std::set<std::pair<int, std::uint64_t>> keys;
  for (const auto& r : results) {
    for (const auto& a : r.final) {
      keys.insert({static_cast<int>(a.type), a.key});
    }
  }
  return keys;
}

TEST(NetflowPipelineTest, DetectionSurvivesNetflowRoundTrip) {
  ScenarioConfig cfg = nu_like_config(63, 480);
  cfg.num_hscans = 3;
  cfg.num_vscans = 1;
  cfg.num_misconfigs = 0;
  const Scenario scenario = build_scenario(cfg);

  const std::string file =
      (std::filesystem::temp_directory_path() / "hifind_e2e.nf5").string();
  write_netflow_v5(scenario.trace, file);
  NetflowV5ReadStats stats;
  const Trace back = read_netflow_v5(file, &stats);
  std::remove(file.c_str());

  EXPECT_GT(stats.records, scenario.trace.stats().syn_packets);

  PipelineConfig pc;
  Pipeline direct(pc), via_netflow(pc);
  const auto ref_keys = alert_keys(direct.run(scenario.trace));
  const auto rt_keys = alert_keys(via_netflow.run(back));

  EXPECT_GT(ref_keys.size(), 0u);
  EXPECT_EQ(rt_keys, ref_keys)
      << "flow-level export carries everything the detectors need";
}

}  // namespace
}  // namespace hifind
