// End-to-end fault injection over the distributed collection path (ISSUE
// acceptance scenario): 8 routers feed one central detector through a
// FaultyChannel. With a clean channel the resilient path must reproduce the
// perfect-network aggregation bit-for-bit; with seeded drop / corrupt /
// duplicate / delay faults plus an outage on one router, the detector must
// still report every victim the full-coverage run reports, every affected
// interval must carry an accurate degraded CoverageReport, and no corrupt
// frame may ever leak into a combined bank.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "../testing/synthetic.hpp"
#include "common/hash.hpp"
#include "detect/load_shedder.hpp"
#include "detect/sketch_wire.hpp"
#include "router/collector.hpp"
#include "router/distributed.hpp"
#include "router/faulty_channel.hpp"

namespace hifind {
namespace {

using testing::syn_packet;
using testing::synack_packet;

constexpr std::size_t kRouters = 8;
constexpr std::uint64_t kCompare = 10;  ///< intervals under test
constexpr std::uint64_t kFeed = kCompare + 3;  ///< extra so stragglers flush

const IPv4 kFloodVictim = IPv4(129, 105, 9, 9);
constexpr std::uint16_t kFloodPort = 80;
const IPv4 kScanAttacker = IPv4(6, 6, 6, 6);
constexpr std::uint16_t kScanPort = 23;

SketchBankConfig bank_cfg() {
  // Paper-shaped (6-stage) but small: the scenario ships 8 routers x 13
  // intervals of frames, so per-frame size dominates test wall-time.
  SketchBankConfig c;
  c.seed = 42;
  c.rs48.bucket_bits = 12;
  c.rs64.bucket_bits = 8;
  c.verification.num_buckets = 1u << 10;
  c.original.num_buckets = 1u << 10;
  c.twod.x_buckets = 1u << 8;
  c.twod.y_buckets = 16;
  return c;
}

HifindDetectorConfig det_cfg() {
  HifindDetectorConfig c;
  c.interval_seconds = 60;
  c.min_persist_intervals = 1;
  return c;
}

CollectorConfig coll_cfg() {
  CollectorConfig c;
  c.num_routers = kRouters;
  c.fetch_attempts_per_poll = 2;
  c.deadline_polls = 2;
  c.quarantine_after = 100;  // this scenario studies loss, not quarantine
  return c;
}

/// One interval of traffic: benign handshakes always; from interval 2 on, a
/// spoofed SYN flood and a horizontal scan. Deterministic given `rng`. The
/// sink only needs feed() — a DistributedMonitor or the shedded fleet below.
template <class Mon>
void feed_interval(Mon& mon, std::uint64_t iv, Pcg32& rng) {
  for (int i = 0; i < 80; ++i) {
    const IPv4 client{0x0a000000u + static_cast<std::uint32_t>(i)};
    const auto sport = static_cast<std::uint16_t>(30000 + i);
    mon.feed(syn_packet(iv, client, IPv4(129, 105, 1, 1), 443, sport));
    mon.feed(synack_packet(iv, IPv4(129, 105, 1, 1), 443, client, sport));
  }
  // The flood victim runs a live service (benign handshakes complete), so
  // the phase-3 dead-service heuristic must keep its flood alert.
  for (int i = 0; i < 40; ++i) {
    const IPv4 client{0x0b000000u + static_cast<std::uint32_t>(i)};
    const auto sport = static_cast<std::uint16_t>(20000 + i);
    mon.feed(syn_packet(iv, client, kFloodVictim, kFloodPort, sport));
    mon.feed(synack_packet(iv, kFloodVictim, kFloodPort, client, sport));
  }
  if (iv < 2) return;
  for (int i = 0; i < 500; ++i) {  // spoofed flood at kFloodVictim:80
    mon.feed(syn_packet(iv, IPv4{rng.next()}, kFloodVictim, kFloodPort,
                        static_cast<std::uint16_t>(1024 + i)));
  }
  for (int i = 0; i < 200; ++i) {  // horizontal scan on port 23
    const IPv4 target{0x81700000u + static_cast<std::uint32_t>(i)};
    mon.feed(syn_packet(iv, kScanAttacker, target, kScanPort));
  }
}

/// (type, key) pairs of an interval's final alerts.
std::set<std::pair<AttackType, std::uint64_t>> alert_keys(
    const IntervalResult& r) {
  std::set<std::pair<AttackType, std::uint64_t>> keys;
  for (const Alert& a : r.final) keys.emplace(a.type, a.key);
  return keys;
}

/// Runs the perfect-network reference: same traffic, same splitter seed,
/// DistributedMonitor::end_interval.
std::vector<IntervalResult> reference_run() {
  DistributedMonitor mon(kRouters, bank_cfg(), det_cfg(), /*splitter_seed=*/7);
  Pcg32 traffic_rng(1234);
  std::vector<IntervalResult> out;
  for (std::uint64_t iv = 0; iv < kFeed; ++iv) {
    feed_interval(mon, iv, traffic_rng);
    out.push_back(mon.end_interval(iv));
  }
  return out;
}

/// Runs the resilient path over `chan`; results indexed by interval.
std::map<std::uint64_t, IntervalResult> resilient_run(FaultyChannel& chan) {
  DistributedMonitor mon(kRouters, bank_cfg(), det_cfg(), /*splitter_seed=*/7);
  Pcg32 traffic_rng(1234);
  ResilientAggregator agg(coll_cfg(), bank_cfg(), det_cfg(),
                          [&](std::size_t r, std::uint64_t iv) {
                            return chan.fetch(r, iv);
                          });
  std::map<std::uint64_t, IntervalResult> out;
  for (std::uint64_t iv = 0; iv < kFeed; ++iv) {
    feed_interval(mon, iv, traffic_rng);
    for (std::size_t r = 0; r < kRouters; ++r) {
      chan.ship(r, iv, mon.ship_and_clear(r, iv));
    }
    chan.advance_to(iv);
    for (auto& res : agg.end_interval(iv)) {
      out.emplace(res.interval, std::move(res));
    }
  }
  return out;
}

TEST(FaultInjectionTest, CleanChannelMatchesPerfectNetworkExactly) {
  const auto ref = reference_run();
  FaultyChannel chan(kRouters, /*seed=*/11);  // no faults configured
  const auto got = resilient_run(chan);

  for (std::uint64_t iv = 0; iv < kCompare; ++iv) {
    ASSERT_TRUE(got.count(iv)) << "interval " << iv << " never finalized";
    const IntervalResult& g = got.at(iv);
    const IntervalResult& r = ref[iv];
    EXPECT_FALSE(g.coverage.degraded);
    EXPECT_EQ(g.coverage.routers_combined.size(), kRouters);
    ASSERT_EQ(g.final.size(), r.final.size()) << "interval " << iv;
    for (std::size_t j = 0; j < g.final.size(); ++j) {
      EXPECT_EQ(g.final[j].type, r.final[j].type);
      EXPECT_EQ(g.final[j].key, r.final[j].key);
      EXPECT_DOUBLE_EQ(g.final[j].magnitude, r.final[j].magnitude);
    }
  }
  // The comparison covered real detections, not empty interval lists.
  std::size_t total_alerts = 0;
  for (std::uint64_t iv = 0; iv < kCompare; ++iv) {
    total_alerts += ref[iv].final.size();
  }
  EXPECT_GE(total_alerts, 2u);
}

TEST(FaultInjectionTest, SingleFaultyRouterNeitherHidesVictimsNorLiesAboutIt) {
  const auto ref = reference_run();

  // Victims the full-coverage run reports (flood victim + scanner), per
  // interval. Sanity: both attacks are actually detected.
  bool saw_flood = false, saw_scan = false;
  for (std::uint64_t iv = 0; iv < kCompare; ++iv) {
    for (const Alert& a : ref[iv].final) {
      saw_flood |= a.type == AttackType::kSynFlooding &&
                   a.key == pack_ip_port(kFloodVictim, kFloodPort);
      saw_scan |= a.type == AttackType::kHorizontalScan;
    }
  }
  ASSERT_TRUE(saw_flood) << "reference run must detect the flood";
  ASSERT_TRUE(saw_scan) << "reference run must detect the scan";

  // Router 7 misbehaves: transient drops, corruption the CRC must catch,
  // replays, one-interval delivery delay — and a hard outage for intervals
  // 4..5 that no deadline can ride out.
  FaultyChannel chan(kRouters, /*seed=*/20260806);
  FaultPlan plan;
  plan.drop_prob = 0.3;
  plan.corrupt_prob = 0.3;
  plan.duplicate_prob = 0.1;
  plan.delay_intervals = 1;
  chan.set_plan(7, plan);
  chan.set_outage(7, 4, 5);

  const auto got = resilient_run(chan);
  EXPECT_GT(chan.frames_corrupted(), 0u) << "faults never fired";
  EXPECT_GT(chan.fetches_suppressed(), 0u);

  std::size_t degraded_intervals = 0;
  for (std::uint64_t iv = 0; iv < kCompare; ++iv) {
    ASSERT_TRUE(got.count(iv)) << "interval " << iv << " never finalized";
    const IntervalResult& g = got.at(iv);

    // Coverage honesty: only router 7 may ever go missing, and the degraded
    // flag must agree with the missing list exactly.
    EXPECT_EQ(g.coverage.routers_total, kRouters);
    EXPECT_EQ(g.coverage.degraded, !g.coverage.routers_missing.empty());
    if (g.coverage.degraded) {
      ++degraded_intervals;
      EXPECT_EQ(g.coverage.routers_missing, (std::vector<std::uint32_t>{7}))
          << "interval " << iv;
      EXPECT_EQ(g.coverage.routers_combined.size(), kRouters - 1);
      EXPECT_DOUBLE_EQ(g.coverage.fraction, 7.0 / 8.0);
    } else {
      EXPECT_EQ(g.coverage.routers_combined.size(), kRouters);
    }

    // Detection resilience: every victim the full-coverage run reports is
    // still reported under the faults.
    const auto want = alert_keys(ref[iv]);
    const auto have = alert_keys(g);
    for (const auto& [type, key] : want) {
      EXPECT_TRUE(have.count({type, key}))
          << "interval " << iv << ": lost " << attack_type_name(type)
          << " victim under single-router faults";
    }
  }
  // The outage window guarantees at least intervals 4 and 5 degrade.
  EXPECT_GE(degraded_intervals, 2u);
  EXPECT_TRUE(got.at(4).coverage.degraded);
  EXPECT_TRUE(got.at(5).coverage.degraded);
}

TEST(FaultInjectionTest, CorruptFramesNeverReachTheCombinedBank) {
  // Aggressive corruption on every router; bit-compare each finalized
  // interval's partial sum against a clean COMBINE of exactly the banks the
  // collector accepted, and each accepted bank against what was shipped.
  DistributedMonitor mon(kRouters, bank_cfg(), det_cfg(), /*splitter_seed=*/7);
  Pcg32 traffic_rng(99);
  FaultyChannel chan(kRouters, /*seed=*/31337);
  for (std::size_t r = 0; r < kRouters; ++r) {
    FaultPlan plan;
    plan.corrupt_prob = 0.5;
    plan.corrupt_byte_flips = 1 + r;  // include single-bit-ish minimal flips
    chan.set_plan(r, plan);
  }
  CollectorState coll(coll_cfg(), bank_cfg(),
                      [&](std::size_t r, std::uint64_t iv) {
                        return chan.fetch(r, iv);
                      });

  // Clean body bytes of every shipped bank, for the bit-compare.
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::vector<std::uint8_t>>
      shipped;
  std::size_t intervals_checked = 0, banks_checked = 0;
  for (std::uint64_t iv = 0; iv < kFeed; ++iv) {
    feed_interval(mon, iv, traffic_rng);
    for (std::size_t r = 0; r < kRouters; ++r) {
      shipped[{static_cast<std::uint32_t>(r), iv}] =
          serialize_bank_hfb1(mon.bank(r));
      chan.ship(r, iv, mon.ship_and_clear(r, iv));
    }
    chan.advance_to(iv);
    for (const FinalizedInterval& f : coll.poll(iv)) {
      std::vector<std::pair<double, const SketchBank*>> terms;
      for (const auto& [router, bank] : f.banks) {
        // Accepted bank is byte-identical to what the router shipped.
        EXPECT_EQ(serialize_bank_hfb1(bank), shipped.at({router, f.interval}))
            << "router " << router << " interval " << f.interval;
        terms.emplace_back(1.0, &bank);
        ++banks_checked;
      }
      // Partial sum is byte-identical to the clean COMBINE of those banks.
      EXPECT_EQ(serialize_bank_hfb1(f.partial_sum),
                serialize_bank_hfb1(SketchBank::combine(terms)))
          << "interval " << f.interval;
      ++intervals_checked;
    }
  }
  EXPECT_GT(chan.frames_corrupted(), 10u) << "corruption never fired";
  EXPECT_GT(coll.stats().frames_corrupt, 10u);
  EXPECT_GE(intervals_checked, kCompare);
  EXPECT_GT(banks_checked, kRouters * kCompare / 2);
}

/// Routers with a LOCAL load shedder in front of each bank: admitted ops are
/// recorded with the inline 2^k compensation weight, exactly like the
/// overlapped pipeline's ingest path. The flow-coherent hash split is the
/// same for every fleet instance, so a shedded run and an unshedded run
/// route each packet to the same router.
struct SheddedRouterFleet {
  std::vector<SketchBank> banks;
  std::vector<LoadShedder> shedders;

  explicit SheddedRouterFleet(const LoadShedderConfig& shed_cfg) {
    banks.reserve(kRouters);
    shedders.reserve(kRouters);
    for (std::size_t r = 0; r < kRouters; ++r) {
      banks.emplace_back(bank_cfg());
      shedders.emplace_back(shed_cfg);
    }
  }

  void feed(const PacketRecord& p) {
    RecordOp op{};
    if (!make_record_op(p, 1.0, op)) return;
    const std::size_t r = mix64(op.k_sip_dip ^ 0xf1ee7) % kRouters;
    const double w = shedders[r].admit(op);
    if (w != 0.0) banks[r].record(p, w);
  }

  /// Seals every router's interval; returns the fleet-wide sampled fraction.
  double seal_interval() {
    std::uint64_t offered = 0, admitted = 0;
    for (LoadShedder& s : shedders) {
      const ShedReport r = s.seal_interval();
      offered += r.ops_offered;
      admitted += r.ops_admitted;
    }
    return offered == 0 ? 1.0
                        : static_cast<double>(admitted) /
                              static_cast<double>(offered);
  }
};

TEST(FaultInjectionTest, OutagePlusLocalSheddingComposesCoverageOnce) {
  // A channel outage (collector rescales the partial sum by 1/fraction) and
  // local load shedding (compensation is INLINE in the recorded weights)
  // land in the same intervals. The two mechanisms must compose: the
  // collector rescale covers only the missing router, never the shed
  // fraction — a double-rescale would inflate attack magnitudes ~2x at the
  // 1/2 shed rate used here.
  const LoadShedderConfig no_shed{};  // disabled: budget 0, level 0
  LoadShedderConfig half_shed;
  half_shed.initial_level = 1;               // pinned 2^-1 sampling
  half_shed.restore_levels_per_interval = 0; // hold the level across seals

  // Surge heuristic off (for BOTH runs): it compares two forecast errors
  // that both decay as the forecaster adapts to the steady flood, so by
  // mid-run it sits on a knife edge where benign sampling noise flips it.
  // This test pins coverage composition, not phase-3 margins.
  HifindDetectorConfig det = det_cfg();
  det.min_syn_surge_fraction = 0.0;

  auto run = [&](const LoadShedderConfig& shed_cfg, FaultyChannel& chan,
                 std::vector<double>* coverage_by_interval) {
    SheddedRouterFleet fleet(shed_cfg);
    Pcg32 traffic_rng(1234);
    ResilientAggregator agg(coll_cfg(), bank_cfg(), det,
                            [&](std::size_t r, std::uint64_t iv) {
                              return chan.fetch(r, iv);
                            });
    std::map<std::uint64_t, IntervalResult> out;
    for (std::uint64_t iv = 0; iv < kFeed; ++iv) {
      feed_interval(fleet, iv, traffic_rng);
      for (std::size_t r = 0; r < kRouters; ++r) {
        chan.ship(r, iv, serialize_frame(fleet.banks[r],
                                         static_cast<std::uint32_t>(r), iv));
        fleet.banks[r].clear();
      }
      if (coverage_by_interval) {
        coverage_by_interval->push_back(fleet.seal_interval());
      } else {
        fleet.seal_interval();
      }
      chan.advance_to(iv);
      for (auto& res : agg.end_interval(iv)) {
        out.emplace(res.interval, std::move(res));
      }
    }
    return out;
  };

  FaultyChannel clean(kRouters, /*seed=*/11);
  const auto ref = run(no_shed, clean, nullptr);

  FaultyChannel faulty(kRouters, /*seed=*/11);
  faulty.set_outage(7, 4, 5);
  std::vector<double> shed_coverage;
  const auto got = run(half_shed, faulty, &shed_coverage);

  std::size_t alerts_compared = 0;
  for (std::uint64_t iv = 0; iv < kCompare; ++iv) {
    ASSERT_TRUE(ref.count(iv) && got.count(iv)) << "interval " << iv;
    const IntervalResult& r = ref.at(iv);
    IntervalResult g = got.at(iv);

    // Local shedding is invisible to the channel-coverage accounting; only
    // the outage degrades it. The two compose multiplicatively once the
    // router's shed coverage is stamped in.
    const bool outage = iv == 4 || iv == 5;
    EXPECT_EQ(g.coverage.degraded, outage) << "interval " << iv;
    EXPECT_DOUBLE_EQ(g.coverage.fraction, outage ? 7.0 / 8.0 : 1.0);
    ASSERT_LT(iv, shed_coverage.size());
    EXPECT_NEAR(shed_coverage[iv], 0.5, 0.1) << "interval " << iv;
    g.coverage.sample_coverage = shed_coverage[iv];
    EXPECT_DOUBLE_EQ(g.coverage.effective_coverage(),
                     g.coverage.fraction * shed_coverage[iv]);

    // Every victim with real margin above the detection threshold survives.
    // (As the forecaster adapts to the steady attacks, alert magnitudes
    // decay toward the threshold; an alert within a few percent of it is
    // legitimately flippable by ANY unbiased estimator's noise, so only
    // alerts with >= 25% headroom are required to reproduce.)
    const double margin_floor = 1.25 * det.interval_threshold();
    const auto have = alert_keys(g);
    for (const Alert& ra : r.final) {
      if (ra.magnitude < margin_floor) continue;
      ASSERT_TRUE(have.count({ra.type, ra.key}))
          << "interval " << iv << ": lost " << attack_type_name(ra.type)
          << " victim under shed + outage";
    }
    for (const Alert& ra : r.final) {
      for (const Alert& ga : g.final) {
        if (ga.type != ra.type || ga.key != ra.key) continue;
        const double ratio = ga.magnitude / ra.magnitude;
        EXPECT_GT(ratio, 0.6) << "interval " << iv << " "
                              << attack_type_name(ra.type);
        EXPECT_LT(ratio, 1.6)
            << "interval " << iv << " " << attack_type_name(ra.type)
            << ": magnitude inflated — coverage rescaled twice?";
        ++alerts_compared;
      }
    }
  }
  EXPECT_GE(alerts_compared, 2u) << "magnitude check never ran";
}

}  // namespace
}  // namespace hifind
