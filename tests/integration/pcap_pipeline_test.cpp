// Interop integration: a scenario exported to standard pcap and re-imported
// must produce EXACTLY the alerts of the in-memory run — the format carries
// everything detection needs (timestamps, addresses, ports, TCP flags).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/pipeline.hpp"
#include "gen/scenario.hpp"
#include "packet/pcap.hpp"

namespace hifind {
namespace {

TEST(PcapPipelineTest, DetectionSurvivesPcapRoundTrip) {
  ScenarioConfig cfg = nu_like_config(61, 480);
  cfg.num_hscans = 3;
  cfg.num_vscans = 1;
  cfg.num_misconfigs = 0;
  const Scenario scenario = build_scenario(cfg);

  const std::string file =
      (std::filesystem::temp_directory_path() / "hifind_e2e.pcap").string();
  write_pcap(scenario.trace, file);
  PcapReadStats stats;
  const NetworkModel& net = scenario.network;
  const Trace back = read_pcap(
      file, [&net](IPv4 ip) { return net.is_internal(ip); }, &stats,
      /*rebase=*/false);
  std::remove(file.c_str());

  EXPECT_EQ(stats.packets, scenario.trace.size());

  PipelineConfig pc;
  Pipeline direct(pc), via_pcap(pc);
  const auto ref = direct.run(scenario.trace);
  const auto rt = via_pcap.run(back);

  ASSERT_EQ(rt.size(), ref.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(rt[i].final.size(), ref[i].final.size()) << "interval " << i;
    for (std::size_t j = 0; j < ref[i].final.size(); ++j) {
      EXPECT_EQ(rt[i].final[j].type, ref[i].final[j].type);
      EXPECT_EQ(rt[i].final[j].key, ref[i].final[j].key);
      ++total;
    }
  }
  EXPECT_GT(total, 0u) << "the scenario must actually produce alerts";
}

}  // namespace
}  // namespace hifind
