#include "sketch/verification_sketch.hpp"

#include <gtest/gtest.h>

namespace hifind {
namespace {

KarySketchConfig vcfg() {
  return KarySketchConfig{.num_stages = 6, .num_buckets = 1u << 12,
                          .seed = 77};
}

TEST(VerificationSketchTest, KeepsTrueHeavyKeys) {
  VerificationSketch v(vcfg());
  v.update(111, 500.0);
  v.update(222, 600.0);
  const std::vector<HeavyKey> cands{{111, 480.0}, {222, 610.0}};
  const auto kept = v.filter(cands, 400.0);
  ASSERT_EQ(kept.size(), 2u);
}

TEST(VerificationSketchTest, DropsFabricatedCandidates) {
  VerificationSketch v(vcfg());
  v.update(111, 500.0);
  // Candidate 999 was an intersection artifact: it never got real mass.
  const std::vector<HeavyKey> cands{{111, 480.0}, {999, 450.0}};
  const auto kept = v.filter(cands, 400.0);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].key, 111u);
}

TEST(VerificationSketchTest, ReportsConservativeMinimumEstimate) {
  VerificationSketch v(vcfg());
  v.update(42, 450.0);
  const auto kept = v.filter({{42, 900.0}}, 400.0);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_NEAR(kept[0].estimate, 450.0, 1.0)
      << "min(candidate, verification) expected";
}

TEST(VerificationSketchTest, EmptyCandidateListIsFine) {
  VerificationSketch v(vcfg());
  EXPECT_TRUE(v.filter({}, 1.0).empty());
}

TEST(VerificationSketchTest, UnderlyingSketchIsCombinable) {
  VerificationSketch a(vcfg()), b(vcfg());
  a.update(5, 10.0);
  b.update(5, 20.0);
  a.sketch().accumulate(b.sketch());
  EXPECT_NEAR(a.sketch().estimate(5), 30.0, 1e-9);
}

}  // namespace
}  // namespace hifind
