#include "sketch/reverse_inference.hpp"

#include "sketch/kary_sketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace hifind {
namespace {

ReversibleSketchConfig rs48(std::uint64_t seed = 1) {
  return ReversibleSketchConfig{.key_bits = 48, .num_stages = 6,
                                .bucket_bits = 12, .seed = seed};
}

ReversibleSketchConfig rs64(std::uint64_t seed = 1) {
  return ReversibleSketchConfig{.key_bits = 64, .num_stages = 6,
                                .bucket_bits = 16, .seed = seed};
}

bool contains_key(const InferenceResult& r, std::uint64_t key) {
  return std::any_of(r.keys.begin(), r.keys.end(),
                     [key](const HeavyKey& h) { return h.key == key; });
}

TEST(ReverseInferenceTest, EmptySketchYieldsNothing) {
  ReversibleSketch s(rs48());
  const InferenceResult r = infer_heavy_keys(s, 10.0);
  EXPECT_TRUE(r.keys.empty());
  EXPECT_FALSE(r.truncated);
}

TEST(ReverseInferenceTest, RecoversSingleHeavyKeyWithStrictIntersection) {
  // With stage_slack = 0 a candidate must hit the heavy bucket in EVERY
  // stage; near-collision keys (differing in one mangled word) survive only
  // with probability (1/4)^6, so recovery is essentially exact.
  ReversibleSketch s(rs48());
  const std::uint64_t key = pack_ip_port(IPv4(129, 105, 44, 7), 1433);
  s.update(key, 500.0);
  InferenceOptions strict;
  strict.stage_slack = 0;
  const InferenceResult r = infer_heavy_keys(s, 100.0, strict);
  ASSERT_EQ(r.keys.size(), 1u);
  EXPECT_EQ(r.keys[0].key, key);
  EXPECT_NEAR(r.keys[0].estimate, 500.0, 1e-6);
}

TEST(ReverseInferenceTest, SlackAdmitsNearCollisionsThatVerificationRemoves) {
  // With stage_slack = 1 (the production default, tolerant of one corrupted
  // stage) a handful of keys sharing 5 of 6 stage buckets with the true key
  // are also emitted. This is the documented contract: bare inference is a
  // small superset, and the paired verification sketch — an independent
  // full-key hash — screens it down to the true key.
  ReversibleSketch s(rs48());
  KarySketch verif(KarySketchConfig{.num_stages = 6,
                                    .num_buckets = 1u << 14,
                                    .seed = 99});
  const std::uint64_t key = pack_ip_port(IPv4(129, 105, 44, 7), 1433);
  s.update(key, 500.0);
  verif.update(key, 500.0);
  const InferenceResult r = infer_heavy_keys(s, 100.0);
  ASSERT_GE(r.keys.size(), 1u);
  std::vector<HeavyKey> screened;
  for (const HeavyKey& k : r.keys) {
    if (verif.estimate(k.key) >= 100.0) screened.push_back(k);
  }
  ASSERT_EQ(screened.size(), 1u);
  EXPECT_EQ(screened[0].key, key);
}

TEST(ReverseInferenceTest, RecoversHeavyKeysUnderBackgroundNoise) {
  ReversibleSketch s(rs48(3));
  Pcg32 rng(29);
  for (int i = 0; i < 30000; ++i) {
    s.update(rng.next64() & ((1ULL << 48) - 1), 1.0);
  }
  std::set<std::uint64_t> heavy;
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t key =
        pack_ip_port(IPv4(200, 1, 1, static_cast<std::uint8_t>(i)), 80);
    heavy.insert(key);
    s.update(key, 400.0 + 50.0 * i);
  }
  const InferenceResult r = infer_heavy_keys(s, 200.0);
  for (const std::uint64_t key : heavy) {
    EXPECT_TRUE(contains_key(r, key)) << format_key(KeyKind::DipDport, key);
  }
}

TEST(ReverseInferenceTest, VerificationScreensToExactlyThePlantedKeys) {
  ReversibleSketch s(rs48(5));
  KarySketch verif(KarySketchConfig{.num_stages = 6,
                                    .num_buckets = 1u << 14,
                                    .seed = 101});
  std::set<std::uint64_t> heavy;
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t key = pack_ip_port(IPv4(10, 0, 3, i), 22);
    heavy.insert(key);
    s.update(key, 1000.0);
    verif.update(key, 1000.0);
  }
  const InferenceResult r = infer_heavy_keys(s, 500.0);
  std::set<std::uint64_t> screened;
  for (const HeavyKey& h : r.keys) {
    EXPECT_GE(h.estimate, 500.0);
    if (verif.estimate(h.key) >= 500.0) screened.insert(h.key);
  }
  EXPECT_EQ(screened, heavy);
}

TEST(ReverseInferenceTest, Works64Bit) {
  ReversibleSketch s(rs64(7));
  Pcg32 rng(41);
  for (int i = 0; i < 30000; ++i) s.update(rng.next64(), 1.0);
  const std::uint64_t key = pack_ip_ip(IPv4(98, 198, 251, 168),
                                       IPv4(129, 105, 9, 10));
  s.update(key, 900.0);
  const InferenceResult r = infer_heavy_keys(s, 400.0);
  EXPECT_TRUE(contains_key(r, key));
}

TEST(ReverseInferenceTest, NegativeMassIsInvisible) {
  ReversibleSketch s(rs48());
  s.update(1234, -5000.0);  // e.g. SYN/ACK surplus
  const InferenceResult r = infer_heavy_keys(s, 100.0);
  EXPECT_TRUE(r.keys.empty());
}

TEST(ReverseInferenceTest, StageSlackRecoversKeyWithOneCorruptedStage) {
  // Corrupt the heavy key's bucket in ONE stage by brute-forcing a key that
  // collides with it there, and loading that collider with negative mass
  // (e.g. a benign service completing handshakes). Strict intersection
  // (r = 0) loses the key; slack r = 1 — the production default — recovers
  // it. This is the failure mode stage_slack exists for.
  ReversibleSketch s(rs48(11));
  const std::uint64_t key = pack_ip_port(IPv4(44, 55, 66, 77), 445);
  s.update(key, 800.0);

  std::uint64_t collider = 0;
  for (std::uint64_t k = 0;; ++k) {
    if (k != key && s.bucket_of(0, k) == s.bucket_of(0, key) &&
        s.bucket_of(1, k) != s.bucket_of(1, key)) {
      collider = k;
      break;
    }
  }
  s.update(collider, -900.0);  // drags the stage-0 bucket below threshold

  InferenceOptions strict;
  strict.stage_slack = 0;
  InferenceOptions slack1;
  slack1.stage_slack = 1;
  EXPECT_FALSE(contains_key(infer_heavy_keys(s, 400.0, strict), key))
      << "strict intersection must lose the corrupted-stage key";
  EXPECT_TRUE(contains_key(infer_heavy_keys(s, 400.0, slack1), key))
      << "slack 1 must tolerate one corrupted stage";
}

TEST(ReverseInferenceTest, TruncationCapsAdversarialOutput) {
  ReversibleSketch s(rs48(13));
  // Plant many heavy keys to force a large candidate set.
  for (std::uint32_t i = 0; i < 600; ++i) {
    s.update(pack_ip_port(IPv4{0x0a000000u + i}, 80), 1000.0);
  }
  InferenceOptions opts;
  opts.max_candidates = 100;
  const InferenceResult r = infer_heavy_keys(s, 300.0, opts);
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.keys.size(), 100u);
}

TEST(ReverseInferenceTest, HeavyBucketsMatchInferenceInputs) {
  ReversibleSketch s(rs48(17));
  const std::uint64_t key = pack_ip_port(IPv4(1, 2, 3, 4), 8080);
  s.update(key, 700.0);
  const auto hb = heavy_buckets(s, 300.0);
  ASSERT_EQ(hb.size(), 6u);
  for (std::size_t h = 0; h < hb.size(); ++h) {
    ASSERT_EQ(hb[h].size(), 1u) << "stage " << h;
    EXPECT_EQ(hb[h][0], s.bucket_of(h, key));
  }
}

TEST(ReverseInferenceTest, RecoversKeySplitAcrossCombinedSketches) {
  // The multi-router property at sketch level: a key sub-threshold at every
  // vantage point becomes recoverable from the COMBINEd sketch.
  const auto cfg = rs48(21);
  ReversibleSketch a(cfg), b(cfg), c(cfg);
  const std::uint64_t key = pack_ip_port(IPv4(129, 105, 7, 7), 443);
  a.update(key, 150.0);
  b.update(key, 180.0);
  c.update(key, 170.0);
  for (ReversibleSketch* part : {&a, &b, &c}) {
    EXPECT_TRUE(infer_heavy_keys(*part, 400.0).keys.empty())
        << "each share is below threshold";
  }
  std::vector<std::pair<double, const ReversibleSketch*>> terms{
      {1.0, &a}, {1.0, &b}, {1.0, &c}};
  const ReversibleSketch combined = ReversibleSketch::combine(terms);
  EXPECT_TRUE(contains_key(infer_heavy_keys(combined, 400.0), key));
}

TEST(ReverseInferenceTest, ForecastErrorSketchInferenceFindsOnlyTheChange) {
  // End-to-end sketch-space change detection: steady keys cancel out in the
  // error sketch; only the NEW heavy key is recovered.
  const auto cfg = rs48(23);
  ReversibleSketch yesterday(cfg), today(cfg);
  const std::uint64_t steady = pack_ip_port(IPv4(1, 1, 1, 1), 80);
  const std::uint64_t burst = pack_ip_port(IPv4(2, 2, 2, 2), 1433);
  yesterday.update(steady, 900.0);
  today.update(steady, 905.0);  // stable within noise
  today.update(burst, 500.0);   // the anomaly
  std::vector<std::pair<double, const ReversibleSketch*>> diff{
      {1.0, &today}, {-1.0, &yesterday}};
  const ReversibleSketch error = ReversibleSketch::combine(diff);
  const InferenceResult r = infer_heavy_keys(error, 100.0);
  EXPECT_TRUE(contains_key(r, burst));
  for (const HeavyKey& k : r.keys) {
    EXPECT_NE(k.key, steady) << "steady traffic must cancel";
  }
}

// Property sweep: inference recall across heavy-key populations.
class InferenceRecall : public ::testing::TestWithParam<int> {};

TEST_P(InferenceRecall, FindsAllPlantedKeys) {
  const int num_heavy = GetParam();
  ReversibleSketch s(rs48(100 + num_heavy));
  Pcg32 rng(num_heavy);
  for (int i = 0; i < 10000; ++i) {
    s.update(rng.next64() & ((1ULL << 48) - 1), 1.0);
  }
  std::set<std::uint64_t> heavy;
  while (static_cast<int>(heavy.size()) < num_heavy) {
    heavy.insert(rng.next64() & ((1ULL << 48) - 1));
  }
  for (const std::uint64_t k : heavy) s.update(k, 500.0);
  const InferenceResult r = infer_heavy_keys(s, 250.0);
  std::size_t found = 0;
  for (const std::uint64_t k : heavy) found += contains_key(r, k) ? 1 : 0;
  EXPECT_EQ(found, heavy.size());
}

INSTANTIATE_TEST_SUITE_P(Populations, InferenceRecall,
                         ::testing::Values(1, 2, 5, 10, 25));

TEST(ReverseInferenceTest, DenseAnomalySetNeedsInSearchVerification) {
  // At ~50 concurrent anomalies in a 2^12-bucket sketch the slack-1 search
  // admits hundreds of thousands of cross-product candidates; an in-search
  // verifier keeps the output exact AND complete.
  const int num_heavy = 50;
  ReversibleSketch s(rs48(7777));
  KarySketch verif(KarySketchConfig{.num_stages = 6,
                                    .num_buckets = 1u << 14,
                                    .seed = 4242});
  Pcg32 rng(num_heavy);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t k = rng.next64() & ((1ULL << 48) - 1);
    s.update(k, 1.0);
    verif.update(k, 1.0);
  }
  std::set<std::uint64_t> heavy;
  while (static_cast<int>(heavy.size()) < num_heavy) {
    heavy.insert(rng.next64() & ((1ULL << 48) - 1));
  }
  for (const std::uint64_t k : heavy) {
    s.update(k, 500.0);
    verif.update(k, 500.0);
  }
  InferenceOptions opts;
  opts.verifier = [&verif](std::uint64_t key, double) {
    return verif.estimate(key) >= 250.0;
  };
  const InferenceResult r = infer_heavy_keys(s, 250.0, opts);
  EXPECT_FALSE(r.truncated);
  std::size_t found = 0;
  for (const std::uint64_t k : heavy) found += contains_key(r, k) ? 1 : 0;
  EXPECT_EQ(found, heavy.size());
  EXPECT_LE(r.keys.size(), heavy.size() + 5)
      << "verifier must remove nearly all cross-product artifacts";
}

TEST(ReverseInferenceTest, PrecollectedBucketsMatchInternalScan) {
  // The detection epoch hands in the heavy-bucket lists its fused forecaster
  // pass collected; the result must equal the classic scan-inside path.
  ReversibleSketch s(rs48(31));
  Pcg32 rng(31);
  for (int i = 0; i < 5000; ++i) {
    s.update(rng.next64() & ((1ULL << 48) - 1), 1.0);
  }
  for (std::uint32_t i = 0; i < 8; ++i) {
    s.update(pack_ip_port(IPv4{0x0a0a0000u + i}, 80), 600.0);
  }
  const double t = 250.0;
  const InferenceResult internal = infer_heavy_keys(s, t);
  const InferenceResult precollected =
      infer_heavy_keys(s, t, InferenceOptions{}, heavy_buckets(s, t));
  EXPECT_EQ(internal.keys.size(), precollected.keys.size());
  for (std::size_t i = 0; i < internal.keys.size(); ++i) {
    EXPECT_EQ(internal.keys[i].key, precollected.keys[i].key) << i;
  }
}

TEST(ReverseInferenceTest, TopNTruncationDeterministicUnderTies) {
  // Regression: max_heavy_per_stage keeps the N largest buckets via a
  // partial sort. With EQUAL-valued buckets (the common case — many flood
  // victims at the same packet rate) the old value-only comparator left the
  // kept set dependent on input order; the tie-break on bucket index makes
  // truncation a pure function of the sketch. Feed the same heavy-bucket
  // lists in ascending and descending order: results must match exactly.
  ReversibleSketch s(rs48(37));
  // 20 keys, all with IDENTICAL mass => equal-valued heavy buckets.
  for (std::uint32_t i = 0; i < 20; ++i) {
    s.update(pack_ip_port(IPv4{0xc0a80000u + i * 7}, 443), 500.0);
  }
  const double t = 250.0;
  InferenceOptions opts;
  opts.max_heavy_per_stage = 6;  // forces truncation among equal values
  const auto ascending = heavy_buckets(s, t);
  auto descending = ascending;
  for (auto& stage : descending) std::reverse(stage.begin(), stage.end());

  const InferenceResult ra = infer_heavy_keys(s, t, opts, ascending);
  const InferenceResult rd = infer_heavy_keys(s, t, opts, descending);
  ASSERT_FALSE(ra.keys.empty());
  ASSERT_EQ(ra.keys.size(), rd.keys.size());
  for (std::size_t i = 0; i < ra.keys.size(); ++i) {
    EXPECT_EQ(ra.keys[i].key, rd.keys[i].key) << i;
  }

  // And repeated runs through the public path are stable.
  const InferenceResult r1 = infer_heavy_keys(s, t, opts);
  const InferenceResult r2 = infer_heavy_keys(s, t, opts);
  ASSERT_EQ(r1.keys.size(), r2.keys.size());
  for (std::size_t i = 0; i < r1.keys.size(); ++i) {
    EXPECT_EQ(r1.keys[i].key, r2.keys[i].key) << i;
  }
}

/// Builds a noisy sketch with `num_heavy` planted keys — enough search work
/// for chunking and work budgets to have something to bite into.
ReversibleSketch dense_sketch(int num_heavy, std::uint64_t seed) {
  ReversibleSketch s(rs48(seed));
  Pcg32 rng(seed);
  for (int i = 0; i < 8000; ++i) {
    s.update(rng.next64() & ((1ULL << 48) - 1), 1.0);
  }
  for (int i = 0; i < num_heavy; ++i) {
    s.update(rng.next64() & ((1ULL << 48) - 1), 500.0);
  }
  return s;
}

InferenceResult run_streaming(const ReversibleSketch& s, double t,
                              const InferenceOptions& opts,
                              std::size_t quantum) {
  StreamingInference search;
  search.begin(s, t, opts);
  while (!search.run_chunk(quantum)) {
  }
  return search.take_result();
}

void expect_same_result(const InferenceResult& a, const InferenceResult& b,
                        const char* what) {
  ASSERT_EQ(a.keys.size(), b.keys.size()) << what;
  for (std::size_t i = 0; i < a.keys.size(); ++i) {
    EXPECT_EQ(a.keys[i].key, b.keys[i].key) << what << " key " << i;
    EXPECT_EQ(a.keys[i].estimate, b.keys[i].estimate) << what << " est " << i;
  }
  EXPECT_EQ(a.truncated, b.truncated) << what;
  EXPECT_EQ(a.work_exhausted, b.work_exhausted) << what;
  EXPECT_EQ(a.heavy_buckets_dropped, b.heavy_buckets_dropped) << what;
  EXPECT_EQ(a.work_used, b.work_used) << what;
}

TEST(StreamingInferenceTest, ChunkSizeNeverChangesTheResult) {
  // The resumable search must be a pure scheduling construct: any chunk
  // quantum — including pathological quantum=1, one search step per chunk —
  // yields the same keys, in the same order, with the same work accounting.
  const ReversibleSketch s = dense_sketch(20, 91);
  const double t = 250.0;
  const InferenceResult whole = infer_heavy_keys(s, t);
  ASSERT_FALSE(whole.keys.empty());
  for (const std::size_t quantum : {std::size_t{1}, std::size_t{7},
                                    std::size_t{64}, std::size_t{4096}}) {
    expect_same_result(whole, run_streaming(s, t, InferenceOptions{}, quantum),
                       "quantum");
  }
}

TEST(StreamingInferenceTest, WorkBudgetTruncationIndependentOfChunkSize) {
  // The work meter — not the chunk boundary — decides where a budgeted
  // search stops, so the truncated key set is identical at every quantum.
  const ReversibleSketch s = dense_sketch(30, 92);
  const double t = 250.0;
  InferenceOptions opts;
  opts.max_work = 200;  // far less than the full search needs
  const InferenceResult ref = run_streaming(s, t, opts, ~std::size_t{0});
  EXPECT_TRUE(ref.work_exhausted);
  // The meter is checked before each step and a step charges its full cost
  // (1 + buckets regrouped at a node, 2 at a leaf), so the final tally may
  // overshoot the cap by at most ONE step — bounded by the per-stage heavy
  // bucket count, never by a chunk.
  EXPECT_GE(ref.work_used, opts.max_work);
  EXPECT_LT(ref.work_used, 2 * opts.max_work);
  for (const std::size_t quantum :
       {std::size_t{1}, std::size_t{13}, std::size_t{512}}) {
    expect_same_result(ref, run_streaming(s, t, opts, quantum), "quantum");
  }
}

TEST(StreamingInferenceTest, BudgetedOutputIsPrefixOfUnbudgeted) {
  // Truncation degrades by CUTTING THE SEARCH SHORT, never by reordering:
  // a budgeted run's keys are a prefix of the unbudgeted run's keys.
  const ReversibleSketch s = dense_sketch(30, 93);
  const double t = 250.0;
  const InferenceResult whole = infer_heavy_keys(s, t);
  InferenceOptions opts;
  opts.max_work = 300;
  const InferenceResult cut = run_streaming(s, t, opts, 64);
  ASSERT_TRUE(cut.work_exhausted);
  ASSERT_LT(cut.keys.size(), whole.keys.size());
  for (std::size_t i = 0; i < cut.keys.size(); ++i) {
    EXPECT_EQ(cut.keys[i].key, whole.keys[i].key) << i;
  }
  EXPECT_TRUE(cut.degraded());
  EXPECT_FALSE(whole.degraded());
}

TEST(StreamingInferenceTest, EngineIsReusableAcrossSearches) {
  // The detector keeps three long-lived engines; a second begin() must
  // fully reset state left by the first search (including a truncated one).
  const ReversibleSketch s = dense_sketch(20, 94);
  const double t = 250.0;
  StreamingInference engine;
  InferenceOptions tight;
  tight.max_work = 100;
  engine.begin(s, t, tight);
  while (!engine.run_chunk(32)) {
  }
  (void)engine.take_result();  // truncated run, discarded

  engine.begin(s, t, InferenceOptions{});
  while (!engine.run_chunk(128)) {
  }
  expect_same_result(infer_heavy_keys(s, t), engine.take_result(), "reuse");
}

}  // namespace
}  // namespace hifind
