// Seed-sweep property tests: the sketch invariants must hold for EVERY hash
// family, not just the default test seed. Each property runs across a set
// of seeds via TEST_P.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sketch/kary_sketch.hpp"
#include "sketch/reverse_inference.hpp"
#include "sketch/reversible_sketch.hpp"
#include "sketch/sketch2d.hpp"

namespace hifind {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, ManglerIsBijectiveOnRandomSample) {
  const std::uint64_t seed = GetParam();
  for (const int bits : {32, 48, 64}) {
    KeyMangler m(seed, bits);
    const std::uint64_t mask =
        bits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
    Pcg32 rng(seed ^ 0x1234);
    std::set<std::uint64_t> images;
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t k = rng.next64() & mask;
      const std::uint64_t y = m.mangle(k);
      EXPECT_LE(y, mask);
      EXPECT_EQ(m.unmangle(y), k);
      images.insert(y);
    }
    // Random keys may repeat; images must repeat EXACTLY as often (checked
    // implicitly by round-trip); spot-check distinctness of a sequential run.
    std::set<std::uint64_t> seq;
    for (std::uint64_t k = 0; k < 512; ++k) seq.insert(m.mangle(k));
    EXPECT_EQ(seq.size(), 512u);
  }
}

TEST_P(SeedSweep, KarySketchLinearity) {
  const std::uint64_t seed = GetParam();
  const KarySketchConfig cfg{.num_stages = 5, .num_buckets = 1u << 10,
                             .seed = seed};
  KarySketch a(cfg), b(cfg), whole(cfg);
  Pcg32 rng(seed);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t key = rng.next64() & 0xfffff;
    const double v = rng.uniform() * 4.0 - 1.0;  // mixed-sign values
    (rng.chance(0.5) ? a : b).update(key, v);
    whole.update(key, v);
  }
  const double ca = 0.7, cb = 0.3;  // arbitrary linear combination
  KarySketch combo(cfg);
  combo.accumulate(a, ca);
  combo.accumulate(b, cb);
  // combo = 0.7a + 0.3b; check against per-key identity on raw counters.
  const auto sa = a.counters();
  const auto sb = b.counters();
  const auto sc = combo.counters();
  for (std::size_t i = 0; i < sc.size(); i += 37) {
    ASSERT_NEAR(sc[i], ca * sa[i] + cb * sb[i], 1e-9);
  }
}

TEST_P(SeedSweep, ReversibleSketchInferenceRecallUnderNoise) {
  const std::uint64_t seed = GetParam();
  ReversibleSketch s(ReversibleSketchConfig{.key_bits = 48, .num_stages = 6,
                                            .bucket_bits = 12, .seed = seed});
  Pcg32 rng(seed ^ 0x9876);
  for (int i = 0; i < 15000; ++i) {
    s.update(rng.next64() & ((1ULL << 48) - 1), 1.0);
  }
  std::set<std::uint64_t> heavy;
  while (heavy.size() < 8) heavy.insert(rng.next64() & ((1ULL << 48) - 1));
  for (const std::uint64_t k : heavy) s.update(k, 400.0);

  const InferenceResult r = infer_heavy_keys(s, 200.0);
  for (const std::uint64_t k : heavy) {
    bool found = false;
    for (const HeavyKey& h : r.keys) found |= h.key == k;
    EXPECT_TRUE(found) << "seed " << seed << " missed a heavy key";
  }
}

TEST_P(SeedSweep, TwoDClassificationSeparatesFloodFromScan) {
  const std::uint64_t seed = GetParam();
  TwoDSketch s(Sketch2dConfig{.num_stages = 5, .x_buckets = 1u << 10,
                              .y_buckets = 64, .seed = seed});
  const std::uint64_t flood_x = 111, scan_x = 222;
  for (int i = 0; i < 300; ++i) s.update(flood_x, 80, 1.0);
  for (int i = 0; i < 300; ++i) {
    s.update(scan_x, static_cast<std::uint64_t>(i), 1.0);
  }
  EXPECT_EQ(s.classify(flood_x), ColumnShape::kConcentrated) << seed;
  EXPECT_EQ(s.classify(scan_x), ColumnShape::kSpread) << seed;
}

TEST_P(SeedSweep, EstimateUnbiasedOverManyKeys) {
  const std::uint64_t seed = GetParam();
  KarySketch s(KarySketchConfig{.num_stages = 6, .num_buckets = 1u << 12,
                                .seed = seed});
  Pcg32 rng(seed + 1);
  for (int i = 0; i < 20000; ++i) s.update(rng.next64(), 1.0);
  // Mean estimate over 200 absent keys should hover near zero.
  double total = 0.0;
  for (int i = 0; i < 200; ++i) total += s.estimate(rng.next64());
  EXPECT_NEAR(total / 200.0, 0.0, 1.5) << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1ull, 2ull, 42ull,
                                           0xdeadbeefull,
                                           0x123456789abcdefull));

}  // namespace
}  // namespace hifind
