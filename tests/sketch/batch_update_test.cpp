// update_batch must be BIT-identical to the same sequence of scalar
// update() calls — the prefetched index pass may not reorder any
// floating-point accumulation (sketch_ops.hpp contract). Exercised across
// ragged batch sizes (empty, 1, sub-block, non-multiple-of-block).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sketch/kary_sketch.hpp"
#include "sketch/reversible_sketch.hpp"
#include "sketch/sketch2d.hpp"
#include "sketch/sketch_ops.hpp"

namespace hifind {
namespace {

std::vector<KeyDelta> random_ops(std::size_t n, std::uint64_t seed,
                                 int key_bits) {
  Pcg32 rng(seed);
  const std::uint64_t mask = key_bits == 64
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << key_bits) - 1;
  std::vector<KeyDelta> ops(n);
  for (auto& op : ops) {
    op.key = rng.next64() & mask;
    op.delta = rng.chance(0.5) ? 1.0 : -1.0 / (1.0 + rng.bounded(8));
  }
  return ops;
}

const std::size_t kBatchSizes[] = {0, 1, 5, 16, 17, 100, 1000, 4099};

TEST(BatchUpdateTest, ReversibleSketchBatchBitIdenticalToScalar) {
  const ReversibleSketchConfig cfg{.key_bits = 48, .num_stages = 6,
                                   .bucket_bits = 12, .seed = 9};
  for (const std::size_t n : kBatchSizes) {
    const auto ops = random_ops(n, 100 + n, cfg.key_bits);
    ReversibleSketch scalar(cfg), batched(cfg);
    for (const auto& op : ops) scalar.update(op.key, op.delta);
    batched.update_batch(ops);
    EXPECT_EQ(batched.update_count(), scalar.update_count());
    const auto a = scalar.counters();
    const auto b = batched.counters();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "n=" << n << " counter " << i;
    }
    for (std::size_t h = 0; h < cfg.num_stages; ++h) {
      ASSERT_EQ(scalar.stage_sum(h), batched.stage_sum(h));
    }
  }
}

TEST(BatchUpdateTest, KarySketchBatchBitIdenticalToScalar) {
  const KarySketchConfig cfg{.num_stages = 6, .num_buckets = 1u << 14,
                             .seed = 4};
  for (const std::size_t n : kBatchSizes) {
    const auto ops = random_ops(n, 200 + n, 64);
    KarySketch scalar(cfg), batched(cfg);
    for (const auto& op : ops) scalar.update(op.key, op.delta);
    batched.update_batch(ops);
    EXPECT_EQ(batched.update_count(), scalar.update_count());
    const auto a = scalar.counters();
    const auto b = batched.counters();
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "n=" << n << " counter " << i;
    }
    for (std::size_t h = 0; h < cfg.num_stages; ++h) {
      ASSERT_EQ(scalar.stage_sum(h), batched.stage_sum(h));
    }
  }
}

TEST(BatchUpdateTest, TwoDSketchBatchBitIdenticalToScalar) {
  const Sketch2dConfig cfg{.num_stages = 5, .x_buckets = 1u << 10,
                           .y_buckets = 64, .seed = 8};
  for (const std::size_t n : kBatchSizes) {
    Pcg32 rng(300 + n);
    std::vector<KeyDelta2d> ops(n);
    for (auto& op : ops) {
      op.x_key = rng.next64();
      op.y_key = rng.bounded(1 << 16);
      op.delta = rng.chance(0.5) ? 1.0 : -0.25;
    }
    TwoDSketch scalar(cfg), batched(cfg);
    for (const auto& op : ops) scalar.update(op.x_key, op.y_key, op.delta);
    batched.update_batch(ops);
    EXPECT_EQ(batched.update_count(), scalar.update_count());
    const auto a = scalar.cells();
    const auto b = batched.cells();
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "n=" << n << " cell " << i;
    }
  }
}

TEST(BatchUpdateTest, PowerOfTwoBucketFoldMatchesGenericFold) {
  // The construction-time power-of-two shift must give exactly the same
  // bucket as the generic multiply-high fold (it is its specialization).
  for (const std::size_t buckets :
       {std::size_t{2}, std::size_t{1} << 12, std::size_t{1} << 14,
        std::size_t{1} << 16, std::size_t{64}}) {
    const TabulationHash h(77, buckets);
    Pcg32 rng(5);
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t key = rng.next64();
      ASSERT_EQ(h.bucket(key), h.bucket(key, buckets))
          << "buckets=" << buckets << " key=" << key;
    }
  }
  // Non-power-of-two counts fall back to the generic fold.
  const TabulationHash h(78, 1000);
  Pcg32 rng(6);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key = rng.next64();
    ASSERT_EQ(h.bucket(key), h.bucket(key, 1000));
  }
}

}  // namespace
}  // namespace hifind
