#include "sketch/kary_sketch.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace hifind {
namespace {

KarySketchConfig small_config(std::uint64_t seed = 1) {
  return KarySketchConfig{.num_stages = 6, .num_buckets = 1u << 10,
                          .seed = seed};
}

TEST(KarySketchTest, RejectsDegenerateShapes) {
  EXPECT_THROW(KarySketch(KarySketchConfig{.num_stages = 0}),
               std::invalid_argument);
  EXPECT_THROW(KarySketch(KarySketchConfig{.num_buckets = 1}),
               std::invalid_argument);
}

TEST(KarySketchTest, EstimateRecoversSingleHeavyKey) {
  KarySketch s(small_config());
  s.update(12345, 1000.0);
  EXPECT_NEAR(s.estimate(12345), 1000.0, 1e-9);
}

TEST(KarySketchTest, EstimateNearZeroForAbsentKey) {
  KarySketch s(small_config());
  s.update(1, 500.0);
  EXPECT_NEAR(s.estimate(999999), 0.0, 500.0 * 0.01)
      << "mean correction should cancel background mass";
}

TEST(KarySketchTest, EstimateUnbiasedUnderBackgroundNoise) {
  KarySketch s(small_config(7));
  Pcg32 rng(3);
  // 20k small background keys plus one heavy hitter.
  for (int i = 0; i < 20000; ++i) {
    s.update(rng.next64(), 1.0);
  }
  s.update(0xfeedfaceULL, 5000.0);
  EXPECT_NEAR(s.estimate(0xfeedfaceULL), 5000.0, 250.0);
}

TEST(KarySketchTest, NegativeUpdatesCancelPositive) {
  KarySketch s(small_config());
  s.update(42, 100.0);
  s.update(42, -100.0);
  EXPECT_NEAR(s.estimate(42), 0.0, 1e-9);
}

TEST(KarySketchTest, UpdateCountsAndAccesses) {
  KarySketch s(small_config());
  EXPECT_EQ(s.accesses_per_update(), 6u);
  s.update(1, 1.0);
  s.update(2, 1.0);
  EXPECT_EQ(s.update_count(), 2u);
  s.clear();
  EXPECT_EQ(s.update_count(), 0u);
  EXPECT_NEAR(s.estimate(1), 0.0, 1e-12);
}

TEST(KarySketchTest, StageSumTracksTotalMass) {
  KarySketch s(small_config());
  s.update(1, 10.0);
  s.update(2, -3.0);
  for (std::size_t h = 0; h < s.num_stages(); ++h) {
    EXPECT_NEAR(s.stage_sum(h), 7.0, 1e-12);
  }
}

// COMBINE is the paper's aggregation primitive: recording traffic into two
// sketches and summing them must equal recording everything into one.
TEST(KarySketchTest, CombineEqualsSingleRecorder) {
  KarySketch a(small_config(5)), b(small_config(5)), whole(small_config(5));
  Pcg32 rng(11);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t key = rng.next64() & 0xffff;
    const double v = rng.chance(0.5) ? 1.0 : -1.0;
    (rng.chance(0.5) ? a : b).update(key, v);
    whole.update(key, v);
  }
  std::vector<std::pair<double, const KarySketch*>> terms{{1.0, &a},
                                                          {1.0, &b}};
  const KarySketch combined = KarySketch::combine(terms);
  for (std::uint64_t key = 0; key < 200; ++key) {
    EXPECT_NEAR(combined.estimate(key), whole.estimate(key), 1e-9) << key;
  }
}

TEST(KarySketchTest, CombineWithCoefficientsScales) {
  KarySketch a(small_config(5)), b(small_config(5));
  a.update(7, 10.0);
  b.update(7, 4.0);
  std::vector<std::pair<double, const KarySketch*>> terms{{2.0, &a},
                                                          {-1.0, &b}};
  EXPECT_NEAR(KarySketch::combine(terms).estimate(7), 16.0, 1e-9);
}

// combine_into is the allocation-free shard-merge primitive: it must match
// the allocating combine() bit for bit, reuse a dirty destination, and keep
// the update-count linear in its terms.
TEST(KarySketchTest, CombineIntoMatchesCombineAndReusesDestination) {
  KarySketch a(small_config(5)), b(small_config(5));
  Pcg32 rng(17);
  for (int i = 0; i < 3000; ++i) {
    (rng.chance(0.5) ? a : b).update(rng.next64() & 0xffff,
                                     rng.chance(0.5) ? 1.0 : -1.0);
  }
  std::vector<std::pair<double, const KarySketch*>> terms{{1.0, &a},
                                                          {1.0, &b}};
  const KarySketch reference = KarySketch::combine(terms);

  KarySketch dest(small_config(5));
  dest.update(999, 123.0);  // stale state combine_into must fully overwrite
  dest.combine_into(terms);
  const auto rc = reference.counters();
  const auto dc = dest.counters();
  ASSERT_EQ(rc.size(), dc.size());
  for (std::size_t i = 0; i < rc.size(); ++i) ASSERT_EQ(rc[i], dc[i]);
  EXPECT_EQ(dest.update_count(), a.update_count() + b.update_count());
  for (std::size_t h = 0; h < dest.num_stages(); ++h) {
    EXPECT_DOUBLE_EQ(dest.stage_sum(h), reference.stage_sum(h));
  }
}

TEST(KarySketchTest, CombineIntoAllowsAliasingTermZeroOnly) {
  KarySketch a(small_config(5)), b(small_config(5));
  a.update(7, 3.0);
  b.update(9, 5.0);
  const std::vector<std::pair<double, const KarySketch*>> terms{{1.0, &a},
                                                                {1.0, &b}};
  const KarySketch reference = KarySketch::combine(terms);
  // dest == term 0: in-place accumulate, still exact.
  a.combine_into(terms);
  const auto rc = reference.counters();
  const auto ac = a.counters();
  for (std::size_t i = 0; i < rc.size(); ++i) ASSERT_EQ(rc[i], ac[i]);
  // dest == a later term would read already-overwritten state: rejected.
  std::vector<std::pair<double, const KarySketch*>> bad{{1.0, &a}, {1.0, &b}};
  EXPECT_THROW(b.combine_into(bad), std::invalid_argument);
}

TEST(KarySketchTest, CombineRejectsShapeMismatch) {
  KarySketch a(small_config(1)), b(small_config(2));  // different seeds
  EXPECT_THROW(a.accumulate(b), std::invalid_argument);
  KarySketch c(KarySketchConfig{.num_stages = 5, .num_buckets = 1u << 10,
                                .seed = 1});
  EXPECT_THROW(a.accumulate(c), std::invalid_argument);
}

TEST(KarySketchTest, CombineRejectsEmptyTerms) {
  std::vector<std::pair<double, const KarySketch*>> none;
  EXPECT_THROW(KarySketch::combine(none), std::invalid_argument);
}

TEST(KarySketchTest, ScaleMultipliesEstimates) {
  KarySketch s(small_config());
  s.update(9, 8.0);
  s.scale(0.5);
  EXPECT_NEAR(s.estimate(9), 4.0, 1e-9);
}

TEST(KarySketchTest, MemoryAccounting) {
  KarySketch s(small_config());
  EXPECT_EQ(s.memory_bytes(), 6u * 1024u * sizeof(double));
  EXPECT_EQ(s.memory_bytes_hw(), 6u * 1024u * sizeof(std::uint32_t));
}

// Property sweep: the estimator stays accurate across shapes.
struct ShapeParam {
  std::size_t stages;
  std::size_t buckets;
};
class KarySketchShapes : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(KarySketchShapes, HeavyHitterSurvivesNoise) {
  const auto [stages, buckets] = GetParam();
  KarySketch s(KarySketchConfig{stages, buckets, 99});
  Pcg32 rng(stages * 1000 + buckets);
  for (int i = 0; i < 8000; ++i) s.update(rng.next64(), 1.0);
  s.update(123456789, 2000.0);
  EXPECT_NEAR(s.estimate(123456789), 2000.0, 2000.0 * 0.15);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KarySketchShapes,
    ::testing::Values(ShapeParam{3, 1u << 10}, ShapeParam{5, 1u << 12},
                      ShapeParam{6, 1u << 14}, ShapeParam{7, 1u << 8}));

}  // namespace
}  // namespace hifind
