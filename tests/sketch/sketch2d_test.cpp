#include "sketch/sketch2d.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace hifind {
namespace {

Sketch2dConfig cfg(std::uint64_t seed = 1) {
  return Sketch2dConfig{.num_stages = 5, .x_buckets = 1u << 12,
                        .y_buckets = 64, .seed = seed};
}

TEST(TwoDSketchTest, RejectsDegenerateShapes) {
  EXPECT_THROW(TwoDSketch(Sketch2dConfig{.num_stages = 0}),
               std::invalid_argument);
  EXPECT_THROW(TwoDSketch(Sketch2dConfig{.x_buckets = 1}),
               std::invalid_argument);
  EXPECT_THROW(TwoDSketch(Sketch2dConfig{.y_buckets = 0}),
               std::invalid_argument);
}

TEST(TwoDSketchTest, ColumnHoldsUpdatedMass) {
  TwoDSketch s(cfg());
  const std::uint64_t x = pack_ip_ip(IPv4(1, 2, 3, 4), IPv4(5, 6, 7, 8));
  s.update(x, 80, 10.0);
  for (std::size_t h = 0; h < 5; ++h) {
    const auto col = s.column(h, x);
    ASSERT_EQ(col.size(), 64u);
    double sum = 0.0;
    for (double c : col) sum += c;
    EXPECT_NEAR(sum, 10.0, 1e-9) << "stage " << h;
  }
}

// The paper's core classification claim: SYN floods concentrate the
// secondary dimension; scans spread it.
TEST(TwoDSketchTest, FloodPatternClassifiesConcentrated) {
  TwoDSketch s(cfg(3));
  const std::uint64_t x = pack_ip_ip(IPv4(7, 7, 7, 7), IPv4(9, 9, 9, 9));
  for (int i = 0; i < 500; ++i) s.update(x, 80, 1.0);  // one port
  EXPECT_EQ(s.classify(x, 5, 0.8), ColumnShape::kConcentrated);
}

TEST(TwoDSketchTest, VscanPatternClassifiesSpread) {
  TwoDSketch s(cfg(3));
  const std::uint64_t x = pack_ip_ip(IPv4(7, 7, 7, 7), IPv4(9, 9, 9, 9));
  for (int port = 1; port <= 500; ++port) {
    s.update(x, static_cast<std::uint64_t>(port), 1.0);
  }
  EXPECT_EQ(s.classify(x, 5, 0.8), ColumnShape::kSpread);
}

TEST(TwoDSketchTest, TwoPortFloodStillConcentrated) {
  // Floods may hit a service on a pair of ports (e.g. 80+443).
  TwoDSketch s(cfg(4));
  const std::uint64_t x = pack_ip_ip(IPv4(1, 1, 1, 1), IPv4(2, 2, 2, 2));
  for (int i = 0; i < 300; ++i) {
    s.update(x, 80, 1.0);
    s.update(x, 443, 1.0);
  }
  EXPECT_EQ(s.classify(x, 5, 0.8), ColumnShape::kConcentrated);
}

TEST(TwoDSketchTest, EmptyColumnReportsSpread) {
  TwoDSketch s(cfg());
  EXPECT_EQ(s.classify(12345, 5, 0.8), ColumnShape::kSpread);
}

TEST(TwoDSketchTest, NegativeMassDoesNotFlipVerdict) {
  TwoDSketch s(cfg(5));
  const std::uint64_t x = pack_ip_ip(IPv4(3, 3, 3, 3), IPv4(4, 4, 4, 4));
  for (int i = 0; i < 200; ++i) s.update(x, 22, 1.0);
  // Benign completed handshakes on colliding keys push other cells negative.
  for (int port = 100; port < 150; ++port) {
    s.update(x, static_cast<std::uint64_t>(port), -2.0);
  }
  EXPECT_EQ(s.classify(x, 5, 0.8), ColumnShape::kConcentrated);
}

TEST(TwoDSketchTest, ClassificationRobustToBackgroundCollisions) {
  TwoDSketch s(cfg(6));
  Pcg32 rng(8);
  for (int i = 0; i < 50000; ++i) {
    s.update(rng.next64(), rng.next() & 0xffff, 1.0);
  }
  const std::uint64_t flood_x = pack_ip_ip(IPv4(66, 66, 6, 6),
                                           IPv4(129, 105, 3, 3));
  for (int i = 0; i < 2000; ++i) s.update(flood_x, 80, 1.0);
  EXPECT_EQ(s.classify(flood_x, 5, 0.8), ColumnShape::kConcentrated);

  const std::uint64_t scan_x = pack_ip_ip(IPv4(77, 7, 7, 7),
                                          IPv4(129, 105, 4, 4));
  for (int port = 0; port < 2000; ++port) {
    s.update(scan_x, static_cast<std::uint64_t>(port), 1.0);
  }
  EXPECT_EQ(s.classify(scan_x, 5, 0.8), ColumnShape::kSpread);
}

TEST(TwoDSketchTest, ActiveRowsTracksDistinctSecondaries) {
  TwoDSketch s(cfg(7));
  const std::uint64_t one_port = 1;
  for (int i = 0; i < 100; ++i) s.update(one_port, 80, 1.0);
  EXPECT_LE(s.active_rows(one_port, 1.0), 2u);

  const std::uint64_t many_ports = 2;
  for (int port = 0; port < 64 * 4; ++port) {
    s.update(many_ports, static_cast<std::uint64_t>(port), 1.0);
  }
  EXPECT_GT(s.active_rows(many_ports, 1.0), 40u);
}

TEST(TwoDSketchTest, CombineEqualsSingleRecorder) {
  TwoDSketch a(cfg(9)), b(cfg(9)), whole(cfg(9));
  Pcg32 rng(3);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t x = rng.next() & 0xff;
    const std::uint64_t y = rng.next() & 0xffff;
    (rng.chance(0.5) ? a : b).update(x, y, 1.0);
    whole.update(x, y, 1.0);
  }
  std::vector<std::pair<double, const TwoDSketch*>> terms{{1.0, &a},
                                                          {1.0, &b}};
  const TwoDSketch combined = TwoDSketch::combine(terms);
  const auto cw = whole.cells();
  const auto cc = combined.cells();
  ASSERT_EQ(cw.size(), cc.size());
  for (std::size_t i = 0; i < cw.size(); ++i) {
    ASSERT_DOUBLE_EQ(cw[i], cc[i]);
  }
}

TEST(TwoDSketchTest, CombineIntoMatchesCombineOnDirtyDestination) {
  TwoDSketch a(cfg(9)), b(cfg(9));
  Pcg32 rng(5);
  for (int i = 0; i < 2000; ++i) {
    (rng.chance(0.5) ? a : b)
        .update(rng.next() & 0xff, rng.next() & 0xffff, 1.0);
  }
  std::vector<std::pair<double, const TwoDSketch*>> terms{{1.0, &a},
                                                          {1.0, &b}};
  const TwoDSketch reference = TwoDSketch::combine(terms);
  TwoDSketch dest(cfg(9));
  dest.update(3, 3, 99.0);  // stale state combine_into must fully overwrite
  dest.combine_into(terms);
  const auto rc = reference.cells();
  const auto dc = dest.cells();
  ASSERT_EQ(rc.size(), dc.size());
  for (std::size_t i = 0; i < rc.size(); ++i) ASSERT_EQ(rc[i], dc[i]);
  EXPECT_EQ(dest.update_count(), a.update_count() + b.update_count());
}

TEST(TwoDSketchTest, CombineRejectsMismatch) {
  TwoDSketch a(cfg(1)), b(cfg(2));
  EXPECT_THROW(a.accumulate(b), std::invalid_argument);
}

TEST(TwoDSketchTest, AccessesPerUpdateIsStageCount) {
  EXPECT_EQ(TwoDSketch(cfg()).accesses_per_update(), 5u);
}

// Sweep phi: stricter phi eventually flips a moderately concentrated column.
class PhiSweep : public ::testing::TestWithParam<double> {};

TEST_P(PhiSweep, ThreePortPatternVerdictMonotoneInPhi) {
  const double phi = GetParam();
  TwoDSketch s(cfg(11));
  const std::uint64_t x = 42;
  // 3 ports, 97% of mass on them; spread across 30 more ports for the rest.
  for (int i = 0; i < 970; ++i) s.update(x, 80 + (i % 3), 1.0);
  for (int port = 0; port < 30; ++port) {
    s.update(x, 1000 + static_cast<std::uint64_t>(port), 1.0);
  }
  const ColumnShape verdict = s.classify(x, 5, phi);
  if (phi <= 0.9) {
    EXPECT_EQ(verdict, ColumnShape::kConcentrated) << "phi=" << phi;
  } else {
    EXPECT_EQ(verdict, ColumnShape::kSpread) << "phi=" << phi;
  }
}

INSTANTIATE_TEST_SUITE_P(PhiGrid, PhiSweep,
                         ::testing::Values(0.5, 0.7, 0.8, 0.9, 0.99));

}  // namespace
}  // namespace hifind
