#include "sketch/reversible_sketch.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace hifind {
namespace {

ReversibleSketchConfig rs48(std::uint64_t seed = 1) {
  return ReversibleSketchConfig{.key_bits = 48, .num_stages = 6,
                                .bucket_bits = 12, .seed = seed};
}

ReversibleSketchConfig rs64(std::uint64_t seed = 1) {
  return ReversibleSketchConfig{.key_bits = 64, .num_stages = 6,
                                .bucket_bits = 16, .seed = seed};
}

TEST(ReversibleSketchConfigTest, WordArithmetic) {
  EXPECT_EQ(rs48().num_words(), 6);
  EXPECT_EQ(rs48().bits_per_word(), 2);
  EXPECT_EQ(rs48().num_buckets(), 4096u);
  EXPECT_EQ(rs64().num_words(), 8);
  EXPECT_EQ(rs64().bits_per_word(), 2);
  EXPECT_EQ(rs64().num_buckets(), 65536u);
}

TEST(ReversibleSketchTest, RejectsInvalidShapes) {
  // key_bits not a byte multiple
  EXPECT_THROW(ReversibleSketch(ReversibleSketchConfig{
                   .key_bits = 44, .num_stages = 6, .bucket_bits = 12}),
               std::invalid_argument);
  // bucket_bits not divisible by word count (12 words? no — 13 bits / 6)
  EXPECT_THROW(ReversibleSketch(ReversibleSketchConfig{
                   .key_bits = 48, .num_stages = 6, .bucket_bits = 13}),
               std::invalid_argument);
  EXPECT_THROW(ReversibleSketch(ReversibleSketchConfig{
                   .key_bits = 48, .num_stages = 0, .bucket_bits = 12}),
               std::invalid_argument);
}

TEST(ReversibleSketchTest, EstimateRecoversHeavyKey) {
  ReversibleSketch s(rs48());
  const std::uint64_t key = pack_ip_port(IPv4(129, 105, 1, 2), 1433);
  s.update(key, 777.0);
  EXPECT_NEAR(s.estimate(key), 777.0, 1e-9);
}

TEST(ReversibleSketchTest, EstimateUnderNoise48And64) {
  for (const auto& cfg : {rs48(3), rs64(3)}) {
    ReversibleSketch s(cfg);
    Pcg32 rng(17);
    const std::uint64_t mask = cfg.key_bits == 64
                                   ? ~std::uint64_t{0}
                                   : (std::uint64_t{1} << cfg.key_bits) - 1;
    for (int i = 0; i < 20000; ++i) s.update(rng.next64() & mask, 1.0);
    const std::uint64_t heavy = 0x123456789abcULL & mask;
    s.update(heavy, 3000.0);
    EXPECT_NEAR(s.estimate(heavy), 3000.0, 450.0) << cfg.key_bits;
  }
}

TEST(ReversibleSketchTest, BucketIndexConsistentAcrossCalls) {
  ReversibleSketch s(rs48());
  const std::uint64_t key = pack_ip_port(IPv4(1, 2, 3, 4), 80);
  for (std::size_t h = 0; h < 6; ++h) {
    const std::size_t b1 = s.bucket_of(h, key);
    const std::size_t b2 = s.bucket_of(h, key);
    EXPECT_EQ(b1, b2);
    EXPECT_LT(b1, s.config().num_buckets());
  }
}

TEST(ReversibleSketchTest, StagesUseIndependentHashes) {
  ReversibleSketch s(rs48());
  const std::uint64_t key = pack_ip_port(IPv4(10, 0, 0, 1), 22);
  std::set<std::size_t> distinct;
  for (std::size_t h = 0; h < 6; ++h) distinct.insert(s.bucket_of(h, key));
  EXPECT_GT(distinct.size(), 2u)
      << "stages landing in identical buckets suggests shared hash state";
}

TEST(ReversibleSketchTest, BucketLoadRoughlyUniformOnClusteredKeys) {
  // Sequential {IP,port} keys (shared prefix) — mangling must spread them.
  ReversibleSketch s(rs48(9));
  const std::size_t k = s.config().num_buckets();
  std::vector<int> load(k, 0);
  for (std::uint32_t i = 0; i < 40960; ++i) {
    const std::uint64_t key = pack_ip_port(IPv4(129u << 24 | i), 80);
    ++load[s.bucket_of(0, key)];
  }
  int maxload = 0;
  for (int l : load) maxload = std::max(maxload, l);
  // mean load is 10; a badly skewed distribution would put hundreds in one.
  EXPECT_LT(maxload, 60);
}

TEST(ReversibleSketchTest, CombineEqualsSingleRecorder) {
  ReversibleSketch a(rs48(5)), b(rs48(5)), whole(rs48(5));
  Pcg32 rng(23);
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t key = rng.next64() & ((1ULL << 48) - 1);
    const double v = rng.chance(0.6) ? 1.0 : -1.0;
    (rng.chance(0.5) ? a : b).update(key, v);
    whole.update(key, v);
  }
  std::vector<std::pair<double, const ReversibleSketch*>> terms{{1.0, &a},
                                                                {1.0, &b}};
  const ReversibleSketch combined = ReversibleSketch::combine(terms);
  // Counter arrays must be identical, not merely similar.
  const auto cw = whole.counters();
  const auto cc = combined.counters();
  ASSERT_EQ(cw.size(), cc.size());
  for (std::size_t i = 0; i < cw.size(); ++i) {
    ASSERT_DOUBLE_EQ(cw[i], cc[i]) << "counter " << i;
  }
}

TEST(ReversibleSketchTest, CombineIntoMatchesCombineOnDirtyDestination) {
  ReversibleSketch a(rs48(5)), b(rs48(5));
  Pcg32 rng(29);
  for (int i = 0; i < 3000; ++i) {
    (rng.chance(0.5) ? a : b)
        .update(rng.next64() & ((1ULL << 48) - 1), rng.chance(0.6) ? 1.0 : -1.0);
  }
  std::vector<std::pair<double, const ReversibleSketch*>> terms{{1.0, &a},
                                                                {1.0, &b}};
  const ReversibleSketch reference = ReversibleSketch::combine(terms);
  ReversibleSketch dest(rs48(5));
  dest.update(42, 7.0);  // stale state combine_into must fully overwrite
  dest.combine_into(terms);
  const auto rc = reference.counters();
  const auto dc = dest.counters();
  ASSERT_EQ(rc.size(), dc.size());
  for (std::size_t i = 0; i < rc.size(); ++i) {
    ASSERT_EQ(rc[i], dc[i]) << "counter " << i;
  }
  EXPECT_EQ(dest.update_count(), a.update_count() + b.update_count());
}

TEST(ReversibleSketchTest, CombineRejectsMismatchedSeeds) {
  ReversibleSketch a(rs48(1)), b(rs48(2));
  EXPECT_THROW(a.accumulate(b), std::invalid_argument);
}

TEST(ReversibleSketchTest, ScaleAndClear) {
  ReversibleSketch s(rs48());
  s.update(100, 10.0);
  s.scale(0.25);
  EXPECT_NEAR(s.estimate(100), 2.5, 1e-9);
  s.clear();
  EXPECT_NEAR(s.estimate(100), 0.0, 1e-12);
  EXPECT_EQ(s.update_count(), 0u);
}

TEST(ReversibleSketchTest, AccessAccountingMatchesPaperShape) {
  ReversibleSketch s48(rs48()), s64(rs64());
  EXPECT_EQ(s48.accesses_per_update(), 6u);
  EXPECT_EQ(s64.accesses_per_update(), 6u);
  // The paper's 15/16-access figure counts word-hash SRAM reads; ours is
  // H * q lookups plus H counter writes.
  EXPECT_EQ(s48.word_hash_reads_per_update(), 36u);
  EXPECT_EQ(s64.word_hash_reads_per_update(), 48u);
}

TEST(ReversibleSketchTest, ManglerRoundTripsThroughSketchConfig) {
  ReversibleSketch s(rs48());
  const std::uint64_t key = pack_ip_port(IPv4(4, 3, 2, 1), 4899);
  EXPECT_EQ(s.mangler().unmangle(s.mangler().mangle(key)), key);
}

}  // namespace
}  // namespace hifind
