// The vectorized batch-index precomputation (simd::tab_hash64 over the
// flattened per-byte tables, sketch_ops.hpp BatchIndexMode) must yield
// byte-identical (row,bucket) index sequences — and therefore bit-identical
// counters and stage sums — to the legacy per-op index loops, for all three
// sketch substrates, on both SIMD backends, including non-power-of-two
// bucket counts (k-ary and 2D; the reversible sketch is power-of-two by
// construction). The per-prefix tests pin the SEQUENCE, not just the final
// state: after every single-op batch the counter arrays must agree, so a
// vectorized path that hit the right buckets in the wrong per-op grouping
// would be caught.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "sketch/kary_sketch.hpp"
#include "sketch/reversible_sketch.hpp"
#include "sketch/simd_ops.hpp"
#include "sketch/sketch2d.hpp"
#include "sketch/sketch_ops.hpp"

namespace hifind {
namespace {

/// Restores the default (vectorized) mode and the dispatched SIMD backend
/// when a test exits, pass or fail.
struct DispatchGuard {
  ~DispatchGuard() {
    set_batch_index_mode(BatchIndexMode::kVectorized);
    simd::set_force_scalar(false);
  }
};

std::vector<KeyDelta> random_ops(std::size_t n, std::uint64_t seed,
                                 int key_bits) {
  Pcg32 rng(seed);
  const std::uint64_t mask = key_bits == 64
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << key_bits) - 1;
  std::vector<KeyDelta> ops(n);
  for (auto& op : ops) {
    op.key = rng.next64() & mask;
    op.delta = rng.chance(0.5) ? 1.0 : -1.0 / (1.0 + rng.bounded(8));
  }
  return ops;
}

const std::size_t kBatchSizes[] = {0, 1, 5, 16, 100, 255, 256, 257, 1000};
const bool kForceScalar[] = {false, true};

template <class Fn>
void in_mode(BatchIndexMode mode, Fn&& fn) {
  set_batch_index_mode(mode);
  fn();
  set_batch_index_mode(BatchIndexMode::kVectorized);
}

TEST(BatchIndexTest, ReversibleVectorizedMatchesLegacy) {
  DispatchGuard guard;
  for (const bool scalar_backend : kForceScalar) {
    simd::set_force_scalar(scalar_backend);
    for (const int key_bits : {48, 64}) {
      // bucket_bits must spread evenly across the q = key_bits/8 words.
      const ReversibleSketchConfig cfg{.key_bits = key_bits, .num_stages = 6,
                                       .bucket_bits = key_bits == 48 ? 12 : 8,
                                       .seed = 9};
      for (const std::size_t n : kBatchSizes) {
        const auto ops = random_ops(n, 100 + n, cfg.key_bits);
        ReversibleSketch vec(cfg), legacy(cfg);
        in_mode(BatchIndexMode::kVectorized, [&] { vec.update_batch(ops); });
        in_mode(BatchIndexMode::kLegacy, [&] { legacy.update_batch(ops); });
        const auto a = vec.counters();
        const auto b = legacy.counters();
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
          ASSERT_EQ(a[i], b[i]) << "scalar=" << scalar_backend
                                << " bits=" << key_bits << " n=" << n
                                << " counter " << i;
        }
        for (std::size_t h = 0; h < cfg.num_stages; ++h) {
          ASSERT_EQ(vec.stage_sum(h), legacy.stage_sum(h));
        }
      }
    }
  }
}

TEST(BatchIndexTest, KaryVectorizedMatchesLegacyIncludingNonPowerOfTwo) {
  DispatchGuard guard;
  for (const bool scalar_backend : kForceScalar) {
    simd::set_force_scalar(scalar_backend);
    // The 1u<<16 shape (6 stages x 64Ki buckets = 3 MiB) clears the
    // kPrefetchMinBytes routing threshold, so vectorized mode actually takes
    // the staged tab_hash64 path there; the smaller shapes pin the scalar
    // small-footprint routing in both modes.
    for (const std::uint32_t buckets : {1000u, 4097u, 1u << 14, 1u << 16}) {
      const KarySketchConfig cfg{.num_stages = 6, .num_buckets = buckets,
                                 .seed = 4};
      for (const std::size_t n : kBatchSizes) {
        const auto ops = random_ops(n, 200 + n, 64);
        KarySketch vec(cfg), legacy(cfg);
        in_mode(BatchIndexMode::kVectorized, [&] { vec.update_batch(ops); });
        in_mode(BatchIndexMode::kLegacy, [&] { legacy.update_batch(ops); });
        const auto a = vec.counters();
        const auto b = legacy.counters();
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
          ASSERT_EQ(a[i], b[i]) << "scalar=" << scalar_backend
                                << " buckets=" << buckets << " n=" << n
                                << " counter " << i;
        }
        for (std::size_t h = 0; h < cfg.num_stages; ++h) {
          ASSERT_EQ(vec.stage_sum(h), legacy.stage_sum(h));
        }
      }
    }
  }
}

TEST(BatchIndexTest, TwoDVectorizedMatchesLegacyIncludingNonPowerOfTwo) {
  DispatchGuard guard;
  for (const bool scalar_backend : kForceScalar) {
    simd::set_force_scalar(scalar_backend);
    for (const auto [xb, yb] : {std::pair{1000u, 48u}, std::pair{1u << 10, 64u},
                                std::pair{4097u, 33u}}) {
      const Sketch2dConfig cfg{.num_stages = 5, .x_buckets = xb,
                               .y_buckets = yb, .seed = 8};
      for (const std::size_t n : kBatchSizes) {
        Pcg32 rng(300 + n);
        std::vector<KeyDelta2d> ops(n);
        for (auto& op : ops) {
          op.x_key = rng.next64();
          op.y_key = rng.bounded(1 << 16);
          op.delta = rng.chance(0.5) ? 1.0 : -0.25;
        }
        TwoDSketch vec(cfg), legacy(cfg);
        in_mode(BatchIndexMode::kVectorized, [&] { vec.update_batch(ops); });
        in_mode(BatchIndexMode::kLegacy, [&] { legacy.update_batch(ops); });
        const auto a = vec.cells();
        const auto b = legacy.cells();
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
          ASSERT_EQ(a[i], b[i]) << "scalar=" << scalar_backend << " x=" << xb
                                << " y=" << yb << " n=" << n << " cell " << i;
        }
      }
    }
  }
}

TEST(BatchIndexTest, PerOpPrefixSequencesIdentical) {
  // Single-op batches, counters compared after EVERY op: equality of every
  // prefix means the two paths touch the same (row,bucket) set for the same
  // op, i.e. the index SEQUENCES are identical, not merely the final sums.
  DispatchGuard guard;
  for (const bool scalar_backend : kForceScalar) {
    simd::set_force_scalar(scalar_backend);
    {
      const ReversibleSketchConfig cfg{.key_bits = 48, .num_stages = 4,
                                       .bucket_bits = 12, .seed = 3};
      const auto ops = random_ops(96, 17, cfg.key_bits);
      ReversibleSketch vec(cfg), legacy(cfg);
      for (std::size_t i = 0; i < ops.size(); ++i) {
        const std::span<const KeyDelta> one(&ops[i], 1);
        in_mode(BatchIndexMode::kVectorized, [&] { vec.update_batch(one); });
        in_mode(BatchIndexMode::kLegacy, [&] { legacy.update_batch(one); });
        const auto a = vec.counters();
        const auto b = legacy.counters();
        for (std::size_t c = 0; c < a.size(); ++c) {
          ASSERT_EQ(a[c], b[c]) << "rs op " << i << " counter " << c;
        }
      }
    }
    {
      const KarySketchConfig cfg{.num_stages = 3, .num_buckets = 1000,
                                 .seed = 5};
      const auto ops = random_ops(96, 19, 64);
      KarySketch vec(cfg), legacy(cfg);
      for (std::size_t i = 0; i < ops.size(); ++i) {
        const std::span<const KeyDelta> one(&ops[i], 1);
        in_mode(BatchIndexMode::kVectorized, [&] { vec.update_batch(one); });
        in_mode(BatchIndexMode::kLegacy, [&] { legacy.update_batch(one); });
        const auto a = vec.counters();
        const auto b = legacy.counters();
        for (std::size_t c = 0; c < a.size(); ++c) {
          ASSERT_EQ(a[c], b[c]) << "kary op " << i << " counter " << c;
        }
      }
    }
  }
}

TEST(BatchIndexTest, ModeToggleRoundTrips) {
  DispatchGuard guard;
  EXPECT_EQ(batch_index_mode(), BatchIndexMode::kVectorized);
  set_batch_index_mode(BatchIndexMode::kLegacy);
  EXPECT_EQ(batch_index_mode(), BatchIndexMode::kLegacy);
  set_batch_index_mode(BatchIndexMode::kVectorized);
  EXPECT_EQ(batch_index_mode(), BatchIndexMode::kVectorized);
}

}  // namespace
}  // namespace hifind
