// Bit-identity contract of the SIMD kernel layer (sketch/simd_ops.hpp) and
// the fused sketch kernels built on it (sketch/sketch_kernels.hpp):
//  * the dispatched backend (AVX2 where available) must produce EXACTLY the
//    scalar backend's bits, for every length — including odd remainders;
//  * the fused rolls must produce EXACTLY the bits of the unfused
//    copy/scale/accumulate sequences they replace, on all three sketch types;
//  * the fused heavy-bucket collection must report EXACTLY heavy_buckets().
#include "sketch/simd_ops.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sketch/kary_sketch.hpp"
#include "sketch/reverse_inference.hpp"
#include "sketch/reversible_sketch.hpp"
#include "sketch/sketch2d.hpp"
#include "sketch/sketch_kernels.hpp"

namespace hifind {
namespace {

/// Runs `fn` once with the dispatched backend and once with the scalar
/// backend forced, restoring dispatch afterwards.
template <class Fn>
void with_both_backends(Fn&& fn) {
  simd::set_force_scalar(false);
  fn(0);
  simd::set_force_scalar(true);
  fn(1);
  simd::set_force_scalar(false);
}

std::vector<double> random_doubles(std::size_t n, Pcg32& rng) {
  std::vector<double> v(n);
  for (auto& x : v) {
    // Mix of magnitudes and signs, plus exact integers like real counters.
    const double raw = static_cast<double>(rng.next() % 100000) / 7.0;
    x = (rng.next() % 2 == 0) ? raw : -raw;
    if (rng.next() % 4 == 0) x = std::floor(x);
  }
  return v;
}

TEST(SimdOpsTest, BackendReportsName) {
  const std::string name = simd::active_backend();
  EXPECT_TRUE(name == "avx2" || name == "scalar") << name;
  simd::set_force_scalar(true);
  EXPECT_STREQ(simd::active_backend(), "scalar");
  simd::set_force_scalar(false);
}

// Every kernel, every length 1..67 (covers all vector remainders and spans
// several full vector blocks): dispatched output must equal scalar output
// bit for bit.
TEST(SimdOpsTest, DispatchedBitIdenticalToScalarAllLengths) {
  Pcg32 rng(0xC0FFEE);
  for (std::size_t n = 1; n <= 67; ++n) {
    const auto y0 = random_doubles(n, rng);
    const auto x = random_doubles(n, rng);
    const auto sum = random_doubles(n, rng);
    const double c = 0.625, a = 0.375, b = -1.0, alpha = 0.3, beta = 0.2;
    const double cut = 1.5, inv_n = 1.0 / 3.0;

    struct Out {
      std::vector<double> scale_y, acc_y, axpby_y;
      std::vector<double> ewma_fc, ewma_err;
      std::vector<double> ewc_fc, ewc_err;
      std::vector<std::uint32_t> ewc_idx;
      std::vector<double> holt_l, holt_t, holt_err;
      std::vector<double> hoc_l, hoc_t, hoc_err;
      std::vector<std::uint32_t> hoc_idx;
      std::vector<double> ma_err, mac_err;
      std::vector<std::uint32_t> mac_idx;
    } out[2];

    with_both_backends([&](int which) {
      Out& o = out[which];
      o.scale_y = y0;
      simd::scale(o.scale_y.data(), n, c);
      o.acc_y = y0;
      simd::accumulate(o.acc_y.data(), x.data(), n, c);
      o.axpby_y = y0;
      simd::axpby(o.axpby_y.data(), x.data(), n, a, b);

      o.ewma_fc = y0;
      o.ewma_err.assign(n, 0.0);
      simd::ewma_roll(o.ewma_fc.data(), x.data(), o.ewma_err.data(), n, alpha);
      o.ewc_fc = y0;
      o.ewc_err.assign(n, 0.0);
      o.ewc_idx.assign(n, 0);
      const std::size_t ec = simd::ewma_roll_collect(
          o.ewc_fc.data(), x.data(), o.ewc_err.data(), n, alpha, cut,
          o.ewc_idx.data());
      o.ewc_idx.resize(ec);

      o.holt_l = y0;
      o.holt_t = sum;
      o.holt_err.assign(n, 0.0);
      simd::holt_roll(o.holt_l.data(), o.holt_t.data(), x.data(),
                      o.holt_err.data(), n, alpha, beta);
      o.hoc_l = y0;
      o.hoc_t = sum;
      o.hoc_err.assign(n, 0.0);
      o.hoc_idx.assign(n, 0);
      const std::size_t hc = simd::holt_roll_collect(
          o.hoc_l.data(), o.hoc_t.data(), x.data(), o.hoc_err.data(), n,
          alpha, beta, cut, o.hoc_idx.data());
      o.hoc_idx.resize(hc);

      o.ma_err.assign(n, 0.0);
      simd::ma_roll(sum.data(), x.data(), o.ma_err.data(), n, inv_n);
      o.mac_err.assign(n, 0.0);
      o.mac_idx.assign(n, 0);
      const std::size_t mc = simd::ma_roll_collect(
          sum.data(), x.data(), o.mac_err.data(), n, inv_n, cut,
          o.mac_idx.data());
      o.mac_idx.resize(mc);
    });

    EXPECT_EQ(out[0].scale_y, out[1].scale_y) << "scale n=" << n;
    EXPECT_EQ(out[0].acc_y, out[1].acc_y) << "accumulate n=" << n;
    EXPECT_EQ(out[0].axpby_y, out[1].axpby_y) << "axpby n=" << n;
    EXPECT_EQ(out[0].ewma_fc, out[1].ewma_fc) << "ewma fc n=" << n;
    EXPECT_EQ(out[0].ewma_err, out[1].ewma_err) << "ewma err n=" << n;
    EXPECT_EQ(out[0].ewc_fc, out[1].ewc_fc) << "ewma_collect fc n=" << n;
    EXPECT_EQ(out[0].ewc_err, out[1].ewc_err) << "ewma_collect err n=" << n;
    EXPECT_EQ(out[0].ewc_idx, out[1].ewc_idx) << "ewma_collect idx n=" << n;
    EXPECT_EQ(out[0].holt_l, out[1].holt_l) << "holt level n=" << n;
    EXPECT_EQ(out[0].holt_t, out[1].holt_t) << "holt trend n=" << n;
    EXPECT_EQ(out[0].holt_err, out[1].holt_err) << "holt err n=" << n;
    EXPECT_EQ(out[0].hoc_l, out[1].hoc_l) << "holt_collect level n=" << n;
    EXPECT_EQ(out[0].hoc_t, out[1].hoc_t) << "holt_collect trend n=" << n;
    EXPECT_EQ(out[0].hoc_err, out[1].hoc_err) << "holt_collect err n=" << n;
    EXPECT_EQ(out[0].hoc_idx, out[1].hoc_idx) << "holt_collect idx n=" << n;
    EXPECT_EQ(out[0].ma_err, out[1].ma_err) << "ma err n=" << n;
    EXPECT_EQ(out[0].mac_err, out[1].mac_err) << "ma_collect err n=" << n;
    EXPECT_EQ(out[0].mac_idx, out[1].mac_idx) << "ma_collect idx n=" << n;
  }
}

// Collect variants must report ascending indices of exactly the elements
// with err >= cut.
TEST(SimdOpsTest, CollectEmitsAscendingThresholdIndices) {
  Pcg32 rng(7);
  for (std::size_t n : {1u, 3u, 4u, 5u, 8u, 13u, 64u, 101u}) {
    auto fc = random_doubles(n, rng);
    const auto obs = random_doubles(n, rng);
    std::vector<double> err(n, 0.0);
    std::vector<std::uint32_t> idx(n, 0);
    const double cut = 0.0;
    const std::size_t count = simd::ewma_roll_collect(
        fc.data(), obs.data(), err.data(), n, 0.5, cut, idx.data());
    std::vector<std::uint32_t> expected;
    for (std::size_t i = 0; i < n; ++i) {
      if (err[i] >= cut) expected.push_back(static_cast<std::uint32_t>(i));
    }
    idx.resize(count);
    EXPECT_EQ(idx, expected) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Fused sketch kernels vs the unfused copy/scale/accumulate sequences.

KarySketch random_kary(Pcg32& rng, std::size_t buckets = 37) {
  // Odd bucket count => odd stage slices (exercises vector remainders).
  KarySketch s(KarySketchConfig{.num_stages = 5, .num_buckets = buckets,
                                .seed = 11});
  for (int i = 0; i < 200; ++i) s.update(rng.next(), 1.0);
  return s;
}

ReversibleSketch random_rs(Pcg32& rng) {
  ReversibleSketch s(ReversibleSketchConfig{
      .key_bits = 32, .num_stages = 4, .bucket_bits = 8, .seed = 11});
  for (int i = 0; i < 200; ++i) s.update(rng.next(), 1.0);
  return s;
}

TwoDSketch random_2d(Pcg32& rng) {
  TwoDSketch s(Sketch2dConfig{.num_stages = 3, .x_buckets = 9, .y_buckets = 7,
                              .seed = 11});
  for (int i = 0; i < 200; ++i) s.update(rng.next(), rng.next(), 1.0);
  return s;
}

/// err = obs - fc; fc = (1-a)*fc + a*obs — the unfused sequence.
template <class S>
S naive_ewma_step(S& fc, const S& obs, double alpha) {
  S err(obs);
  err.accumulate(fc, -1.0);
  fc.scale(1.0 - alpha);
  fc.accumulate(obs, alpha);
  return err;
}

template <class S>
void expect_same_counters(const S& a, const S& b, const char* what) {
  const auto ca = a.counters();
  const auto cb = b.counters();
  ASSERT_EQ(ca.size(), cb.size()) << what;
  for (std::size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i], cb[i]) << what << " counter " << i;
  }
}

void expect_same_counters(const TwoDSketch& a, const TwoDSketch& b,
                          const char* what) {
  const auto ca = a.cells();
  const auto cb = b.cells();
  ASSERT_EQ(ca.size(), cb.size()) << what;
  for (std::size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i], cb[i]) << what << " cell " << i;
  }
}

template <class S>
void check_ewma_fusion(S fc, const S& obs, const char* what) {
  S fc_naive(fc);
  S err_fused(obs);  // storage; overwritten by the kernel
  kernels::ewma_roll(fc, obs, err_fused, 0.5);
  const S err_naive = naive_ewma_step(fc_naive, obs, 0.5);
  expect_same_counters(err_fused, err_naive, what);
  expect_same_counters(fc, fc_naive, what);
}

TEST(SketchKernelsTest, FusedEwmaBitIdenticalToUnfusedAllSketchTypes) {
  Pcg32 rng(99);
  {
    const KarySketch obs = random_kary(rng);
    KarySketch fc = random_kary(rng);
    check_ewma_fusion(std::move(fc), obs, "kary");
  }
  {
    const ReversibleSketch obs = random_rs(rng);
    ReversibleSketch fc = random_rs(rng);
    check_ewma_fusion(std::move(fc), obs, "reversible");
  }
  {
    const TwoDSketch obs = random_2d(rng);
    TwoDSketch fc = random_2d(rng);
    check_ewma_fusion(std::move(fc), obs, "twod");
  }
}

TEST(SketchKernelsTest, FusedEwmaStageSumsMatchUnfused) {
  Pcg32 rng(123);
  const KarySketch obs = random_kary(rng);
  KarySketch fc = random_kary(rng);
  KarySketch fc_naive(fc);
  KarySketch err_fused(obs);
  kernels::ewma_roll(fc, obs, err_fused, 0.5);
  const KarySketch err_naive = naive_ewma_step(fc_naive, obs, 0.5);
  for (std::size_t h = 0; h < obs.num_stages(); ++h) {
    EXPECT_EQ(err_fused.stage_sum(h), err_naive.stage_sum(h)) << h;
    EXPECT_EQ(fc.stage_sum(h), fc_naive.stage_sum(h)) << h;
  }
}

TEST(SketchKernelsTest, FusedHoltBitIdenticalToUnfused) {
  Pcg32 rng(7);
  const double alpha = 0.5, beta = 0.2;
  const ReversibleSketch obs = random_rs(rng);
  ReversibleSketch level = random_rs(rng);
  ReversibleSketch trend = random_rs(rng);
  ReversibleSketch level_n(level), trend_n(trend);

  ReversibleSketch err_fused(obs);
  kernels::holt_roll(level, trend, obs, err_fused, alpha, beta);

  // The seed's unfused sequence.
  ReversibleSketch forecast(level_n);
  forecast.accumulate(trend_n, 1.0);
  ReversibleSketch err_naive(obs);
  err_naive.accumulate(forecast, -1.0);
  ReversibleSketch new_level(forecast);
  new_level.scale(1.0 - alpha);
  new_level.accumulate(obs, alpha);
  ReversibleSketch delta(new_level);
  delta.accumulate(level_n, -1.0);
  trend_n.scale(1.0 - beta);
  trend_n.accumulate(delta, beta);
  level_n = new_level;

  expect_same_counters(err_fused, err_naive, "holt err");
  expect_same_counters(level, level_n, "holt level");
  expect_same_counters(trend, trend_n, "holt trend");
  for (std::size_t h = 0; h < obs.config().num_stages; ++h) {
    EXPECT_EQ(err_fused.stage_sum(h), err_naive.stage_sum(h)) << h;
    EXPECT_EQ(level.stage_sum(h), level_n.stage_sum(h)) << h;
    EXPECT_EQ(trend.stage_sum(h), trend_n.stage_sum(h)) << h;
  }
}

TEST(SketchKernelsTest, FusedCollectMatchesHeavyBuckets) {
  Pcg32 rng(31337);
  const ReversibleSketch obs = random_rs(rng);
  ReversibleSketch fc = random_rs(rng);
  const double threshold = 2.0;

  with_both_backends([&](int) {
    ReversibleSketch fc_run(fc);
    ReversibleSketch err(obs);
    StageBuckets heavy;
    kernels::ewma_roll_collect(fc_run, obs, err, 0.5, threshold, heavy);
    EXPECT_EQ(heavy, heavy_buckets(err, threshold));
  });
}

TEST(SketchKernelsTest, CollectOnTwoDLeavesHeavyEmptyAndRolls) {
  Pcg32 rng(5);
  const TwoDSketch obs = random_2d(rng);
  TwoDSketch fc = random_2d(rng);
  TwoDSketch fc_naive(fc);
  TwoDSketch err(obs);
  StageBuckets heavy{{1, 2, 3}};
  kernels::ewma_roll_collect(fc, obs, err, 0.5, 1.0, heavy);
  EXPECT_TRUE(heavy.empty());
  const TwoDSketch err_naive = naive_ewma_step(fc_naive, obs, 0.5);
  expect_same_counters(err, err_naive, "twod collect");
}

TEST(SketchKernelsTest, AssignReusesStorageAndCopiesEverything) {
  Pcg32 rng(17);
  const KarySketch src = random_kary(rng);
  KarySketch dst(src.config());
  kernels::assign(dst, src);
  expect_same_counters(dst, src, "assign");
  for (std::size_t h = 0; h < src.num_stages(); ++h) {
    EXPECT_EQ(dst.stage_sum(h), src.stage_sum(h));
  }
  EXPECT_EQ(dst.update_count(), src.update_count());
  KarySketch other(KarySketchConfig{.num_stages = 2, .num_buckets = 8,
                                    .seed = 3});
  EXPECT_THROW(kernels::assign(other, src), std::invalid_argument);
}

// accumulate/scale now route through the dispatched kernels; linearity must
// hold bit-identically across backends.
TEST(SketchKernelsTest, AccumulateScaleBitIdenticalAcrossBackends) {
  Pcg32 rng(2024);
  const KarySketch a = random_kary(rng);
  const KarySketch b = random_kary(rng);
  std::vector<double> counters[2];
  with_both_backends([&](int which) {
    KarySketch t(a);
    t.accumulate(b, -0.5);
    t.scale(1.25);
    counters[which].assign(t.counters().begin(), t.counters().end());
  });
  EXPECT_EQ(counters[0], counters[1]);
}

}  // namespace
}  // namespace hifind
