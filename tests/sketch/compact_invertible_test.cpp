// CompactInvertibleSketch + CompactExtraction contract tests: heavy keys
// recovered by direct bucket decode (no sweep), COMBINE linearity exact
// enough for shard-merge bit-identity, and extraction that is a pure
// function of (sketch, threshold, options) — independent of chunk size,
// with deterministic max_work truncation.
#include "sketch/compact_invertible.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace hifind {
namespace {

CompactInvertibleConfig ci48(std::uint64_t seed = 1) {
  return CompactInvertibleConfig{.key_bits = 48, .num_stages = 3,
                                 .bucket_bits = 10, .seed = seed};
}

CompactInvertibleConfig ci64(std::uint64_t seed = 1) {
  return CompactInvertibleConfig{.key_bits = 64, .num_stages = 3,
                                 .bucket_bits = 10, .seed = seed};
}

/// Background: n light keys, one update each.
void feed_noise(CompactInvertibleSketch& s, int n, std::uint64_t seed,
                int bits) {
  Pcg32 rng(seed);
  const std::uint64_t mask =
      bits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
  for (int i = 0; i < n; ++i) s.update(rng.next64() & mask, 1.0);
}

std::set<std::uint64_t> inferred_keys(const InferenceResult& r) {
  std::set<std::uint64_t> keys;
  for (const auto& k : r.keys) keys.insert(k.key);
  return keys;
}

TEST(CompactInvertibleSketch, RejectsInvalidShapes) {
  EXPECT_THROW(CompactInvertibleSketch(CompactInvertibleConfig{
                   .key_bits = 4, .num_stages = 3, .bucket_bits = 10}),
               std::invalid_argument);
  EXPECT_THROW(CompactInvertibleSketch(CompactInvertibleConfig{
                   .key_bits = 48, .num_stages = 0, .bucket_bits = 10}),
               std::invalid_argument);
  EXPECT_THROW(CompactInvertibleSketch(CompactInvertibleConfig{
                   .key_bits = 48, .num_stages = 9, .bucket_bits = 10}),
               std::invalid_argument);
  EXPECT_THROW(CompactInvertibleSketch(CompactInvertibleConfig{
                   .key_bits = 48, .num_stages = 3, .bucket_bits = 0}),
               std::invalid_argument);
}

TEST(CompactInvertibleSketch, EstimateRecoversHeavyKeyUnderNoise) {
  for (const auto& cfg : {ci48(), ci64()}) {
    CompactInvertibleSketch s(cfg);
    const std::uint64_t heavy = 0x0000ABCD1234ULL;
    for (int i = 0; i < 500; ++i) s.update(heavy, 1.0);
    feed_noise(s, 3000, 7, cfg.key_bits);
    EXPECT_NEAR(s.estimate(heavy), 500.0, 60.0)
        << "key_bits=" << cfg.key_bits;
  }
}

TEST(CompactInvertibleSketch, DecodeRecoversDominantKey) {
  CompactInvertibleSketch s(ci48());
  // Keys chosen with both set and cleared bits in every byte.
  const std::uint64_t heavy = 0x00005A5AC3C3ULL;
  for (int i = 0; i < 400; ++i) s.update(heavy, 1.0);
  feed_noise(s, 1000, 11, 48);
  // The heavy key must decode from at least one of its stage buckets
  // (majority decode survives light collision noise).
  bool recovered = false;
  for (std::size_t h = 0; h < s.config().num_stages; ++h) {
    if (s.decode_bucket(h, s.bucket_of(h, heavy)) == heavy) recovered = true;
  }
  EXPECT_TRUE(recovered);
}

TEST(CompactInvertibleSketch, ExtractionFindsAllHeavyKeysNoSweep) {
  CompactInvertibleSketch s(ci48());
  Pcg32 rng(3);
  std::set<std::uint64_t> heavies;
  while (heavies.size() < 12) {
    heavies.insert(rng.next64() & ((std::uint64_t{1} << 48) - 1));
  }
  for (const std::uint64_t k : heavies) {
    for (int i = 0; i < 300; ++i) s.update(k, 1.0);
  }
  feed_noise(s, 4000, 13, 48);
  const InferenceResult r = infer_heavy_keys(s, 150.0);
  const auto found = inferred_keys(r);
  for (const std::uint64_t k : heavies) {
    EXPECT_TRUE(found.count(k)) << "missed heavy key " << k;
  }
  EXPECT_FALSE(r.truncated);
  EXPECT_FALSE(r.work_exhausted);
  EXPECT_GT(r.work_used, 0u);
}

TEST(CompactInvertibleSketch, NegativeDeltasAndScaleStayLinear) {
  // SYN - SYN/ACK recording and EWMA forecast rolls both rely on the
  // counters being plain linear accumulators.
  CompactInvertibleSketch s(ci48());
  const std::uint64_t key = 0x1111222233ULL;
  for (int i = 0; i < 200; ++i) s.update(key, 1.0);
  for (int i = 0; i < 80; ++i) s.update(key, -1.0);
  EXPECT_NEAR(s.estimate(key), 120.0, 1e-6);
  s.scale(0.5);
  EXPECT_NEAR(s.estimate(key), 60.0, 1e-6);
}

TEST(CompactInvertibleSketch, UpdateBatchBitIdenticalToScalar) {
  Pcg32 rng(17);
  std::vector<KeyDelta> ops(5000);
  for (auto& op : ops) {
    op.key = rng.next64() & ((std::uint64_t{1} << 48) - 1);
    op.delta = (rng.next() & 1) ? 1.0 : -1.0;
  }
  CompactInvertibleSketch scalar(ci48()), batch(ci48());
  for (const auto& op : ops) scalar.update(op.key, op.delta);
  batch.update_batch(ops);
  const auto a = scalar.counters();
  const auto b = batch.counters();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "counter " << i;
  }
  EXPECT_EQ(scalar.update_count(), batch.update_count());
}

TEST(CompactInvertibleSketch, CombineIsExactlyLinear) {
  // combine(two half-streams) must be BIT-IDENTICAL to one sketch that saw
  // the whole stream — the property the shard merge and the multi-router
  // aggregation are built on. Unit deltas make every partial sum exact.
  CompactInvertibleSketch whole(ci48()), a(ci48()), b(ci48());
  Pcg32 rng(23);
  for (int i = 0; i < 6000; ++i) {
    const std::uint64_t key = rng.next64() & ((std::uint64_t{1} << 48) - 1);
    const double delta = (rng.next() & 1) ? 1.0 : -1.0;
    whole.update(key, delta);
    ((i & 1) ? a : b).update(key, delta);
  }
  const std::vector<std::pair<double, const CompactInvertibleSketch*>> terms =
      {{1.0, &a}, {1.0, &b}};
  const CompactInvertibleSketch merged = CompactInvertibleSketch::combine(
      std::span<const std::pair<double, const CompactInvertibleSketch*>>(
          terms));
  const auto w = whole.counters();
  const auto m = merged.counters();
  ASSERT_EQ(w.size(), m.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    ASSERT_EQ(w[i], m[i]) << "counter " << i;
  }
  for (std::size_t h = 0; h < whole.config().num_stages; ++h) {
    EXPECT_EQ(whole.stage_sum(h), merged.stage_sum(h)) << "stage " << h;
  }
}

TEST(CompactInvertibleSketch, CombineIntoMatchesCombineAndChecksAliasing) {
  CompactInvertibleSketch a(ci48()), b(ci48());
  feed_noise(a, 2000, 5, 48);
  feed_noise(b, 2000, 6, 48);
  const std::vector<std::pair<double, const CompactInvertibleSketch*>> terms =
      {{1.0, &a}, {-0.5, &b}};
  const CompactInvertibleSketch fresh = CompactInvertibleSketch::combine(
      std::span<const std::pair<double, const CompactInvertibleSketch*>>(
          terms));
  CompactInvertibleSketch dest(ci48());
  const std::vector<std::pair<double, const CompactInvertibleSketch*>>
      dest_terms = {{1.0, &a}, {-0.5, &b}};
  dest.combine_into(
      std::span<const std::pair<double, const CompactInvertibleSketch*>>(
          dest_terms));
  const auto f = fresh.counters();
  const auto d = dest.counters();
  ASSERT_EQ(f.size(), d.size());
  for (std::size_t i = 0; i < f.size(); ++i) {
    ASSERT_EQ(f[i], d[i]) << "counter " << i;
  }
  // Destination may alias term 0 only.
  const std::vector<std::pair<double, const CompactInvertibleSketch*>> bad = {
      {1.0, &a}, {1.0, &dest}};
  EXPECT_THROW(
      dest.combine_into(
          std::span<const std::pair<double, const CompactInvertibleSketch*>>(
              bad)),
      std::invalid_argument);
}

TEST(CompactInvertibleSketch, SerializeRoundTripViaCounters) {
  CompactInvertibleSketch s(ci64());
  feed_noise(s, 3000, 31, 64);
  CompactInvertibleSketch back(ci64());
  back.load_counters(s.counters());
  const auto a = s.counters();
  const auto b = back.counters();
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "counter " << i;
  }
  for (std::size_t h = 0; h < s.config().num_stages; ++h) {
    EXPECT_EQ(s.stage_sum(h), back.stage_sum(h)) << "stage " << h;
  }
  EXPECT_THROW(back.load_counters(s.counters().subspan(1)),
               std::invalid_argument);
}

// ---- CompactExtraction determinism ---------------------------------------

CompactInvertibleSketch attack_sketch(std::uint64_t seed = 41) {
  CompactInvertibleSketch s(ci48(seed));
  Pcg32 rng(seed);
  for (int k = 0; k < 20; ++k) {
    const std::uint64_t key = rng.next64() & ((std::uint64_t{1} << 48) - 1);
    for (int i = 0; i < 250; ++i) s.update(key, 1.0);
  }
  feed_noise(s, 5000, seed + 1, 48);
  return s;
}

void expect_same_result(const InferenceResult& a, const InferenceResult& b,
                        const char* what) {
  ASSERT_EQ(a.keys.size(), b.keys.size()) << what;
  for (std::size_t i = 0; i < a.keys.size(); ++i) {
    EXPECT_EQ(a.keys[i].key, b.keys[i].key) << what << " key " << i;
    EXPECT_EQ(a.keys[i].estimate, b.keys[i].estimate) << what << " est " << i;
  }
  EXPECT_EQ(a.truncated, b.truncated) << what;
  EXPECT_EQ(a.work_exhausted, b.work_exhausted) << what;
  EXPECT_EQ(a.work_used, b.work_used) << what;
  EXPECT_EQ(a.heavy_bucket_total, b.heavy_bucket_total) << what;
  EXPECT_EQ(a.heavy_buckets_dropped, b.heavy_buckets_dropped) << what;
}

TEST(CompactExtraction, ChunkSizeInvariant) {
  const CompactInvertibleSketch s = attack_sketch();
  const double t = 150.0;
  InferenceResult whole;
  {
    CompactExtraction e;
    e.begin(s, t, {});
    while (!e.run_chunk(~std::size_t{0})) {
    }
    whole = e.take_result();
  }
  EXPECT_GT(whole.keys.size(), 0u);
  for (const std::size_t quantum : {std::size_t{1}, std::size_t{7},
                                    std::size_t{64}, std::size_t{1000}}) {
    CompactExtraction e;
    e.begin(s, t, {});
    while (!e.run_chunk(quantum)) {
    }
    InferenceResult r = e.take_result();
    expect_same_result(whole, r,
                       ("quantum " + std::to_string(quantum)).c_str());
  }
}

TEST(CompactExtraction, MaxWorkTruncationIsPureFunctionOfInputs) {
  const CompactInvertibleSketch s = attack_sketch();
  const double t = 150.0;
  InferenceOptions opts;
  opts.max_work = 120;  // far below the full extraction's work
  InferenceResult first;
  {
    CompactExtraction e;
    e.begin(s, t, opts);
    while (!e.run_chunk(~std::size_t{0})) {
    }
    first = e.take_result();
  }
  EXPECT_TRUE(first.work_exhausted);
  // The cap is checked before each step (same as the DFS), so the meter may
  // overshoot by at most one step: decode (1 + 48/8 key words) + screen (2).
  EXPECT_LE(first.work_used, opts.max_work + 9);
  // Same truncation point at any chunk size — the budget's chunk/thread
  // invariance reduces to exactly this property.
  for (const std::size_t quantum : {std::size_t{1}, std::size_t{13},
                                    std::size_t{50}}) {
    CompactExtraction e;
    e.begin(s, t, opts);
    while (!e.run_chunk(quantum)) {
    }
    InferenceResult r = e.take_result();
    expect_same_result(first, r,
                       ("quantum " + std::to_string(quantum)).c_str());
  }
}

TEST(CompactExtraction, MaxHeavyPerStageKeepsLargestBuckets) {
  const CompactInvertibleSketch s = attack_sketch();
  InferenceOptions opts;
  opts.max_heavy_per_stage = 4;
  const InferenceResult capped = infer_heavy_keys(s, 150.0, opts);
  const InferenceResult full = infer_heavy_keys(s, 150.0);
  EXPECT_GT(capped.heavy_buckets_dropped, 0u);
  EXPECT_LT(capped.keys.size(), full.keys.size());
  // Every capped key is a full-run key (the cap only drops work, it never
  // invents candidates).
  const auto full_keys = inferred_keys(full);
  for (const auto& k : capped.keys) {
    EXPECT_TRUE(full_keys.count(k.key)) << k.key;
  }
}

TEST(CompactExtraction, VerifierScreensCandidates) {
  const CompactInvertibleSketch s = attack_sketch();
  InferenceOptions opts;
  opts.verifier = [](std::uint64_t, double) { return false; };
  const InferenceResult r = infer_heavy_keys(s, 150.0, opts);
  EXPECT_EQ(r.keys.size(), 0u);
  EXPECT_GT(r.work_used, 0u);  // decode + screen work still metered
}

TEST(CompactExtraction, DuplicateDecodesEmittedOnce) {
  // One dominant key in several stages decodes from each of its buckets;
  // the result must carry it exactly once.
  CompactInvertibleSketch s(ci48());
  const std::uint64_t heavy = 0x00C0FFEE1234ULL;
  for (int i = 0; i < 1000; ++i) s.update(heavy, 1.0);
  const InferenceResult r = infer_heavy_keys(s, 500.0);
  std::size_t count = 0;
  for (const auto& k : r.keys) count += (k.key == heavy) ? 1 : 0;
  EXPECT_EQ(count, 1u);
}

}  // namespace
}  // namespace hifind
