#include "forecast/scalar.hpp"

#include <gtest/gtest.h>

namespace hifind {
namespace {

TEST(ScalarEwmaTest, FirstSampleSeedsMean) {
  ScalarEwma e(0.5);
  EXPECT_FALSE(e.primed());
  EXPECT_DOUBLE_EQ(e.update(10.0), 10.0);
  EXPECT_TRUE(e.primed());
}

TEST(ScalarEwmaTest, FollowsRecurrence) {
  ScalarEwma e(0.25);
  e.update(100.0);
  EXPECT_DOUBLE_EQ(e.update(200.0), 0.25 * 200 + 0.75 * 100);
}

TEST(ScalarEwmaTest, RejectsBadAlpha) {
  EXPECT_THROW(ScalarEwma(0.0), std::invalid_argument);
  EXPECT_THROW(ScalarEwma(1.0001), std::invalid_argument);
}

TEST(CusumTest, StaysQuietWhenSamplesBelowOffset) {
  Cusum c(1.0, 5.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(c.update(0.5));
  }
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
}

TEST(CusumTest, AccumulatesAndAlarms) {
  Cusum c(1.0, 5.0);
  // Each sample contributes 2-1 = 1; alarm after value passes 5.
  int first_alarm = -1;
  for (int i = 0; i < 10; ++i) {
    if (c.update(2.0) && first_alarm < 0) first_alarm = i;
  }
  EXPECT_EQ(first_alarm, 5);
}

TEST(CusumTest, RecoversAfterChangeEnds) {
  Cusum c(1.0, 3.0);
  for (int i = 0; i < 10; ++i) c.update(2.0);
  EXPECT_TRUE(c.alarmed());
  for (int i = 0; i < 20; ++i) c.update(0.0);
  EXPECT_FALSE(c.alarmed());
}

TEST(CusumTest, ResetClears) {
  Cusum c(0.5, 1.0);
  c.update(10.0);
  EXPECT_TRUE(c.alarmed());
  c.reset();
  EXPECT_FALSE(c.alarmed());
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
}

TEST(CusumTest, RejectsNonPositiveThreshold) {
  EXPECT_THROW(Cusum(1.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace hifind
