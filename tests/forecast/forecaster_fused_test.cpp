// Equivalence and allocation tests for the fused, allocation-free forecaster
// steps:
//  * EWMA and Holt step_inplace output is BIT-IDENTICAL to the seed's
//    copy/scale/accumulate formulation, step after step;
//  * the moving average's incremental running sum matches the naive
//    re-summed window to rounding (and exactly until the first eviction);
//  * step_collect hands back exactly heavy_buckets(error, threshold);
//  * steady-state steps perform ZERO heap allocations (counting global
//    operator new), with or without an arena.
#include "forecast/forecaster.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "sketch/kary_sketch.hpp"
#include "sketch/reverse_inference.hpp"
#include "sketch/reversible_sketch.hpp"
#include "sketch/sketch_arena.hpp"

// --- Counting global allocator -------------------------------------------
// Replacing operator new in this TU replaces it binary-wide; counting is
// gated on a flag so only the measured regions are observed.
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::size_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t) {
  return counted_alloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace hifind {
namespace {

class AllocGuard {
 public:
  AllocGuard() {
    g_alloc_count.store(0);
    g_count_allocs.store(true);
  }
  ~AllocGuard() { g_count_allocs.store(false); }
  std::size_t count() const { return g_alloc_count.load(); }
};

KarySketchConfig small_kary() {
  return KarySketchConfig{.num_stages = 4, .num_buckets = 64, .seed = 9};
}

/// A fresh observation sketch: mixed integer and fractional mass.
KarySketch observation(Pcg32& rng, bool fractional = false) {
  KarySketch s(small_kary());
  for (int i = 0; i < 150; ++i) {
    s.update(rng.next64(), fractional ? 0.125 + (rng.next() % 8) * 0.375 : 1.0);
  }
  return s;
}

ReversibleSketch rs_observation(Pcg32& rng) {
  ReversibleSketch s(ReversibleSketchConfig{
      .key_bits = 32, .num_stages = 4, .bucket_bits = 8, .seed = 9});
  for (int i = 0; i < 150; ++i) s.update(rng.next(), 1.0);
  return s;
}

template <class S>
void expect_bitwise_equal(const S& a, const S& b, int step) {
  const auto ca = a.counters();
  const auto cb = b.counters();
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i) {
    ASSERT_EQ(ca[i], cb[i]) << "step " << step << " counter " << i;
  }
  for (std::size_t h = 0; h < a.num_stages(); ++h) {
    ASSERT_EQ(a.stage_sum(h), b.stage_sum(h)) << "step " << step << " stage "
                                              << h;
  }
}

// --- Naive (seed-formulation) references ---------------------------------

template <class S>
class NaiveEwma {
 public:
  explicit NaiveEwma(double alpha) : alpha_(alpha) {}
  std::optional<S> step(const S& observed) {
    if (!forecast_) {
      forecast_.emplace(observed);
      return std::nullopt;
    }
    S error(observed);
    error.accumulate(*forecast_, -1.0);
    forecast_->scale(1.0 - alpha_);
    forecast_->accumulate(observed, alpha_);
    return error;
  }

 private:
  double alpha_;
  std::optional<S> forecast_;
};

template <class S>
class NaiveHolt {
 public:
  NaiveHolt(double alpha, double beta) : alpha_(alpha), beta_(beta) {}
  std::optional<S> step(const S& observed) {
    if (!level_) {
      level_.emplace(observed);
      return std::nullopt;
    }
    if (!trend_) {
      trend_.emplace(observed);
      trend_->accumulate(*level_, -1.0);
      level_.emplace(observed);
      return std::nullopt;
    }
    S forecast(*level_);
    forecast.accumulate(*trend_, 1.0);
    S error(observed);
    error.accumulate(forecast, -1.0);
    S new_level(forecast);
    new_level.scale(1.0 - alpha_);
    new_level.accumulate(observed, alpha_);
    S delta(new_level);
    delta.accumulate(*level_, -1.0);
    trend_->scale(1.0 - beta_);
    trend_->accumulate(delta, beta_);
    level_.emplace(std::move(new_level));
    return error;
  }

 private:
  double alpha_, beta_;
  std::optional<S> level_;
  std::optional<S> trend_;
};

/// O(window) reference: re-sums the whole ring every step.
template <class S>
class NaiveMovingAverage {
 public:
  explicit NaiveMovingAverage(std::size_t window) : window_(window) {}
  std::optional<S> step(const S& observed) {
    std::optional<S> error;
    if (!ring_.empty()) {
      S forecast(ring_[0]);
      for (std::size_t i = 1; i < ring_.size(); ++i) {
        forecast.accumulate(ring_[i], 1.0);
      }
      forecast.scale(1.0 / static_cast<double>(ring_.size()));
      error.emplace(observed);
      error->accumulate(forecast, -1.0);
    }
    ring_.push_back(observed);
    if (ring_.size() > window_) ring_.erase(ring_.begin());
    return error;
  }

 private:
  std::size_t window_;
  std::vector<S> ring_;
};

// --- Equivalence ----------------------------------------------------------

TEST(FusedForecasterTest, EwmaBitIdenticalToNaiveOverManySteps) {
  Pcg32 rng(1);
  EwmaForecaster<KarySketch> fused(0.5);
  NaiveEwma<KarySketch> naive(0.5);
  for (int step = 0; step < 12; ++step) {
    const KarySketch obs = observation(rng, /*fractional=*/step % 2 == 1);
    const KarySketch* e_fused = fused.step_inplace(obs);
    const auto e_naive = naive.step(obs);
    ASSERT_EQ(e_fused == nullptr, !e_naive.has_value()) << step;
    if (e_fused != nullptr) expect_bitwise_equal(*e_fused, *e_naive, step);
  }
}

TEST(FusedForecasterTest, HoltBitIdenticalToNaiveOverManySteps) {
  Pcg32 rng(2);
  HoltForecaster<KarySketch> fused(0.5, 0.2);
  NaiveHolt<KarySketch> naive(0.5, 0.2);
  for (int step = 0; step < 12; ++step) {
    const KarySketch obs = observation(rng, /*fractional=*/step % 3 == 2);
    const KarySketch* e_fused = fused.step_inplace(obs);
    const auto e_naive = naive.step(obs);
    ASSERT_EQ(e_fused == nullptr, !e_naive.has_value()) << step;
    if (e_fused != nullptr) expect_bitwise_equal(*e_fused, *e_naive, step);
  }
}

TEST(FusedForecasterTest, MovingAverageMatchesNaiveWindowResum) {
  Pcg32 rng(3);
  const std::size_t window = 4;
  MovingAverageForecaster<KarySketch> fast(window);
  NaiveMovingAverage<KarySketch> naive(window);
  for (int step = 0; step < 16; ++step) {
    const KarySketch obs = observation(rng, /*fractional=*/true);
    const KarySketch* e_fast = fast.step_inplace(obs);
    const auto e_naive = naive.step(obs);
    ASSERT_EQ(e_fast == nullptr, !e_naive.has_value()) << step;
    if (e_fast == nullptr) continue;
    const auto cf = e_fast->counters();
    const auto cn = e_naive->counters();
    ASSERT_EQ(cf.size(), cn.size());
    for (std::size_t i = 0; i < cf.size(); ++i) {
      // Incremental sum re-associates; equal to naive up to rounding.
      ASSERT_NEAR(cf[i], cn[i], 1e-9) << "step " << step << " counter " << i;
    }
  }
}

TEST(FusedForecasterTest, MovingAverageBitExactBeforeFirstEviction) {
  // Until the ring wraps, the incremental sum performs the same additions in
  // the same order as the naive re-sum, so errors are bit-identical.
  Pcg32 rng(4);
  const std::size_t window = 6;
  MovingAverageForecaster<KarySketch> fast(window);
  NaiveMovingAverage<KarySketch> naive(window);
  for (std::size_t step = 0; step < window; ++step) {
    const KarySketch obs = observation(rng, /*fractional=*/true);
    const KarySketch* e_fast = fast.step_inplace(obs);
    const auto e_naive = naive.step(obs);
    if (e_fast == nullptr) continue;
    expect_bitwise_equal(*e_fast, *e_naive, static_cast<int>(step));
  }
}

TEST(FusedForecasterTest, StepCollectMatchesHeavyBucketsAllModels) {
  Pcg32 rng(5);
  SketchArena<ReversibleSketch> arena;
  const double threshold = 2.0;
  for (const ForecastModel model :
       {ForecastModel::kEwma, ForecastModel::kMovingAverage,
        ForecastModel::kHolt}) {
    auto f = make_forecaster<ReversibleSketch>(model, 0.5, 0.2, 3, &arena);
    for (int step = 0; step < 8; ++step) {
      const ReversibleSketch obs = rs_observation(rng);
      StageBuckets heavy;
      const ReversibleSketch* error = f->step_collect(obs, threshold, heavy);
      if (error == nullptr) continue;
      EXPECT_EQ(heavy, heavy_buckets(*error, threshold))
          << "model " << static_cast<int>(model) << " step " << step;
    }
  }
}

TEST(FusedForecasterTest, StepWrapperMatchesStepInplace) {
  Pcg32 rng(6);
  EwmaForecaster<KarySketch> a(0.5);
  EwmaForecaster<KarySketch> b(0.5);
  for (int step = 0; step < 5; ++step) {
    const KarySketch obs = observation(rng);
    const KarySketch* ea = a.step_inplace(obs);
    const auto eb = b.step(obs);
    ASSERT_EQ(ea == nullptr, !eb.has_value());
    if (ea != nullptr) expect_bitwise_equal(*ea, *eb, step);
  }
}

// --- Allocation behavior --------------------------------------------------

TEST(FusedForecasterTest, EwmaSteadyStateStepsAllocateNothing) {
  Pcg32 rng(7);
  SketchArena<KarySketch> arena;
  EwmaForecaster<KarySketch> f(0.5, &arena);
  // Warm up past forecast seeding + first error acquisition.
  std::vector<KarySketch> observations;
  for (int i = 0; i < 8; ++i) observations.push_back(observation(rng));
  f.step_inplace(observations[0]);
  f.step_inplace(observations[1]);
  {
    AllocGuard guard;
    for (int i = 2; i < 8; ++i) {
      ASSERT_NE(f.step_inplace(observations[i]), nullptr);
    }
    EXPECT_EQ(guard.count(), 0u);
  }
}

TEST(FusedForecasterTest, HoltSteadyStateStepsAllocateNothing) {
  Pcg32 rng(8);
  HoltForecaster<KarySketch> f(0.5, 0.2);  // no arena: steady state still free
  std::vector<KarySketch> observations;
  for (int i = 0; i < 9; ++i) observations.push_back(observation(rng));
  for (int i = 0; i < 3; ++i) f.step_inplace(observations[i]);
  {
    AllocGuard guard;
    for (int i = 3; i < 9; ++i) {
      ASSERT_NE(f.step_inplace(observations[i]), nullptr);
    }
    EXPECT_EQ(guard.count(), 0u);
  }
}

TEST(FusedForecasterTest, MovingAverageSteadyStateStepsAllocateNothing) {
  Pcg32 rng(9);
  const std::size_t window = 3;
  MovingAverageForecaster<KarySketch> f(window);
  std::vector<KarySketch> observations;
  for (int i = 0; i < 10; ++i) observations.push_back(observation(rng));
  // Fill the ring (+1 so the error slot exists and eviction has begun).
  for (std::size_t i = 0; i <= window; ++i) f.step_inplace(observations[i]);
  {
    AllocGuard guard;
    for (std::size_t i = window + 1; i < 10; ++i) {
      ASSERT_NE(f.step_inplace(observations[i]), nullptr);
    }
    EXPECT_EQ(guard.count(), 0u);
  }
}

TEST(FusedForecasterTest, ArenaRecyclesStorageAcrossReset) {
  Pcg32 rng(10);
  SketchArena<KarySketch> arena;
  EwmaForecaster<KarySketch> f(0.5, &arena);
  f.step_inplace(observation(rng));
  f.step_inplace(observation(rng));
  EXPECT_EQ(arena.reuses(), 0u);
  const std::size_t cold_clones = arena.clones();
  EXPECT_GT(cold_clones, 0u);
  for (int round = 0; round < 3; ++round) {
    f.reset();  // returns forecast + error storage to the pool
    f.step_inplace(observation(rng));
    f.step_inplace(observation(rng));
  }
  EXPECT_EQ(arena.clones(), cold_clones);  // no new cold allocations
  EXPECT_GE(arena.reuses(), 6u);
}

}  // namespace
}  // namespace hifind
