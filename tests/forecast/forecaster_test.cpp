#include "forecast/forecaster.hpp"

#include <gtest/gtest.h>

#include "sketch/kary_sketch.hpp"
#include "sketch/reversible_sketch.hpp"

namespace hifind {
namespace {

KarySketchConfig kcfg() {
  return KarySketchConfig{.num_stages = 4, .num_buckets = 1u << 8, .seed = 3};
}

KarySketch observed(double value_for_key_7) {
  KarySketch s(kcfg());
  s.update(7, value_for_key_7);
  return s;
}

TEST(EwmaForecasterTest, RejectsBadAlpha) {
  EXPECT_THROW(EwmaForecaster<KarySketch>(0.0), std::invalid_argument);
  EXPECT_THROW(EwmaForecaster<KarySketch>(1.5), std::invalid_argument);
}

TEST(EwmaForecasterTest, FirstStepWarmsUpOnly) {
  EwmaForecaster<KarySketch> f(0.5);
  EXPECT_FALSE(f.step(observed(10.0)).has_value());
}

TEST(EwmaForecasterTest, SecondStepErrorIsObservedMinusFirst) {
  // Paper Eq. 1: M_f(2) = M_0(1); e(2) = M_0(2) - M_0(1).
  EwmaForecaster<KarySketch> f(0.5);
  f.step(observed(10.0));
  const auto e = f.step(observed(14.0));
  ASSERT_TRUE(e.has_value());
  EXPECT_NEAR(e->estimate(7), 4.0, 1e-9);
}

TEST(EwmaForecasterTest, MatchesScalarRecurrence) {
  // Track the sketch EWMA against the scalar recurrence for one key.
  const double alpha = 0.3;
  EwmaForecaster<KarySketch> f(alpha);
  const double obs[] = {10, 12, 9, 30, 11, 10};
  double forecast = 0.0;
  bool primed = false;
  for (const double o : obs) {
    const auto e = f.step(observed(o));
    if (!primed) {
      forecast = o;
      primed = true;
      EXPECT_FALSE(e.has_value());
      continue;
    }
    ASSERT_TRUE(e.has_value());
    EXPECT_NEAR(e->estimate(7), o - forecast, 1e-9);
    forecast = alpha * o + (1 - alpha) * forecast;
  }
}

TEST(EwmaForecasterTest, StableTrafficYieldsNearZeroError) {
  EwmaForecaster<KarySketch> f(0.5);
  for (int i = 0; i < 10; ++i) {
    const auto e = f.step(observed(100.0));
    if (e) EXPECT_NEAR(e->estimate(7), 0.0, 1e-9);
  }
}

TEST(EwmaForecasterTest, SpikeShowsUpOnceThenDecays) {
  EwmaForecaster<KarySketch> f(0.5);
  f.step(observed(100.0));
  f.step(observed(100.0));
  const auto spike = f.step(observed(600.0));
  ASSERT_TRUE(spike.has_value());
  EXPECT_NEAR(spike->estimate(7), 500.0, 1e-9);
  // Next interval back at baseline: error is negative (forecast absorbed
  // half the spike), not another alarm.
  const auto after = f.step(observed(100.0));
  ASSERT_TRUE(after.has_value());
  EXPECT_LT(after->estimate(7), 0.0);
}

TEST(EwmaForecasterTest, ResetForgetsHistory) {
  EwmaForecaster<KarySketch> f(0.5);
  f.step(observed(100.0));
  f.reset();
  EXPECT_FALSE(f.step(observed(500.0)).has_value());
}

TEST(EwmaForecasterTest, WorksOnReversibleSketches) {
  ReversibleSketchConfig cfg{.key_bits = 48, .num_stages = 6,
                             .bucket_bits = 12, .seed = 5};
  EwmaForecaster<ReversibleSketch> f(0.5);
  ReversibleSketch s1(cfg), s2(cfg);
  s1.update(42, 10.0);
  s2.update(42, 50.0);
  f.step(s1);
  const auto e = f.step(s2);
  ASSERT_TRUE(e.has_value());
  EXPECT_NEAR(e->estimate(42), 40.0, 1e-9);
}

TEST(MovingAverageForecasterTest, AveragesWindow) {
  MovingAverageForecaster<KarySketch> f(3);
  f.step(observed(10.0));
  f.step(observed(20.0));
  f.step(observed(30.0));
  const auto e = f.step(observed(50.0));  // forecast = (10+20+30)/3 = 20
  ASSERT_TRUE(e.has_value());
  EXPECT_NEAR(e->estimate(7), 30.0, 1e-9);
}

TEST(MovingAverageForecasterTest, WindowSlides) {
  MovingAverageForecaster<KarySketch> f(2);
  f.step(observed(10.0));
  f.step(observed(20.0));
  f.step(observed(30.0));
  const auto e = f.step(observed(0.0));  // forecast = (20+30)/2 = 25
  ASSERT_TRUE(e.has_value());
  EXPECT_NEAR(e->estimate(7), -25.0, 1e-9);
}

TEST(HoltForecasterTest, NeedsTwoWarmupIntervals) {
  HoltForecaster<KarySketch> f(0.5, 0.3);
  EXPECT_FALSE(f.step(observed(10.0)).has_value());
  EXPECT_FALSE(f.step(observed(20.0)).has_value());
  EXPECT_TRUE(f.step(observed(30.0)).has_value());
}

TEST(HoltForecasterTest, TracksLinearTrendWithNearZeroError) {
  // A pure ramp: Holt should forecast it almost exactly; EWMA would lag.
  HoltForecaster<KarySketch> f(0.5, 0.5);
  std::optional<KarySketch> last_error;
  for (int i = 1; i <= 12; ++i) {
    last_error = f.step(observed(10.0 * i));
  }
  ASSERT_TRUE(last_error.has_value());
  EXPECT_NEAR(last_error->estimate(7), 0.0, 2.0);

  EwmaForecaster<KarySketch> g(0.5);
  std::optional<KarySketch> ewma_error;
  for (int i = 1; i <= 12; ++i) ewma_error = g.step(observed(10.0 * i));
  ASSERT_TRUE(ewma_error.has_value());
  EXPECT_GT(ewma_error->estimate(7), 5.0) << "EWMA lags a ramp";
}

TEST(MakeForecasterTest, FactoryProducesEachModel) {
  for (const ForecastModel m :
       {ForecastModel::kEwma, ForecastModel::kMovingAverage,
        ForecastModel::kHolt}) {
    auto f = make_forecaster<KarySketch>(m);
    ASSERT_NE(f, nullptr);
    EXPECT_FALSE(f->step(observed(1.0)).has_value());
  }
}

}  // namespace
}  // namespace hifind
