#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "../testing/synthetic.hpp"

namespace hifind {
namespace {

using testing::syn_packet;
using testing::synack_packet;

PipelineConfig cfg() {
  PipelineConfig c;
  c.bank.seed = 42;
  c.bank.twod.x_buckets = 1u << 10;
  c.detector.interval_seconds = 60;
  c.detector.min_persist_intervals = 1;
  return c;
}

Timestamp minute(double m) {
  return static_cast<Timestamp>(m * 60.0 * kMicrosPerSecond);
}

/// Benign completed handshakes spread through interval `m`.
void baseline_minute(Pipeline& p, double m) {
  for (int i = 0; i < 50; ++i) {
    const IPv4 client{0x64000000u + static_cast<std::uint32_t>(i)};
    const IPv4 server(129, 105, 1, 1);
    const auto sport = static_cast<std::uint16_t>(20000 + i);
    const Timestamp ts = minute(m) + static_cast<Timestamp>(i) * 1000000;
    p.offer(syn_packet(ts, client, server, 443, sport));
    p.offer(synack_packet(ts + 1000, server, 443, client, sport));
  }
}

TEST(PipelineTest, IntervalBoundariesCloseAutomatically) {
  Pipeline p(cfg());
  int callbacks = 0;
  p.on_interval([&](const IntervalResult&) { ++callbacks; });
  baseline_minute(p, 0);
  baseline_minute(p, 1);
  baseline_minute(p, 2);
  EXPECT_EQ(callbacks, 2) << "two boundaries crossed";
  p.finish();
  EXPECT_EQ(callbacks, 3);
}

TEST(PipelineTest, QuietGapsStillRollIntervals) {
  Pipeline p(cfg());
  baseline_minute(p, 0);
  baseline_minute(p, 5);  // 4 empty intervals in between
  p.finish();
  EXPECT_EQ(p.results().size(), 6u);
}

TEST(PipelineTest, DetectsFloodInjectedMidStream) {
  Pipeline p(cfg());
  baseline_minute(p, 0);
  baseline_minute(p, 1);
  // Flood in minute 2.
  Pcg32 rng(3);
  baseline_minute(p, 2);
  for (int i = 0; i < 400; ++i) {
    p.offer(syn_packet(minute(2.2) + i, IPv4{rng.next()},
                       IPv4(129, 105, 1, 1), 443,
                       static_cast<std::uint16_t>(1024 + i)));
  }
  baseline_minute(p, 3);
  p.finish();

  ASSERT_EQ(p.results().size(), 4u);
  EXPECT_TRUE(p.results()[1].final.empty());
  EXPECT_GE(
      IntervalResult::count(p.results()[2].final, AttackType::kSynFlooding),
      1u);
}

TEST(PipelineTest, FinishIsIdempotentOnEmptyPipeline) {
  Pipeline p(cfg());
  EXPECT_FALSE(p.finish().has_value());
}

TEST(PipelineTest, RunConvenienceProcessesWholeTrace) {
  Trace t;
  for (int m = 0; m < 3; ++m) {
    for (int i = 0; i < 30; ++i) {
      const auto sport = static_cast<std::uint16_t>(20000 + i);
      t.push_back(syn_packet(minute(m) + i, IPv4(100, 1, 1, 1),
                             IPv4(129, 105, 1, 1), 443, sport));
      t.push_back(synack_packet(minute(m) + i + 1, IPv4(129, 105, 1, 1), 443,
                                IPv4(100, 1, 1, 1), sport));
    }
  }
  t.sort();
  Pipeline p(cfg());
  const auto results = p.run(t);
  EXPECT_EQ(results.size(), 3u);
  for (const auto& r : results) EXPECT_TRUE(r.final.empty());
}

}  // namespace
}  // namespace hifind
