#include "core/evaluation.hpp"

#include <gtest/gtest.h>

namespace hifind {
namespace {

GroundTruthEvent flood_event(IPv4 dip, std::uint16_t dport, Timestamp start,
                             Timestamp end) {
  GroundTruthEvent e;
  e.kind = EventKind::kSynFloodSpoofed;
  e.label = "flood";
  e.start = start;
  e.end = end;
  e.dip = dip;
  e.dport = dport;
  return e;
}

GroundTruthEvent hscan_event(IPv4 sip, std::uint16_t dport, Timestamp start,
                             Timestamp end) {
  GroundTruthEvent e;
  e.kind = EventKind::kHorizontalScan;
  e.label = "scan";
  e.start = start;
  e.end = end;
  e.sip = sip;
  e.dport = dport;
  return e;
}

Alert flood_alert(IPv4 dip, std::uint16_t dport, std::uint64_t interval) {
  Alert a;
  a.type = AttackType::kSynFlooding;
  a.key_kind = KeyKind::DipDport;
  a.key = pack_ip_port(dip, dport);
  a.interval = interval;
  return a;
}

Alert hscan_alert(IPv4 sip, std::uint16_t dport, std::uint64_t interval) {
  Alert a;
  a.type = AttackType::kHorizontalScan;
  a.key_kind = KeyKind::SipDport;
  a.key = pack_ip_port(sip, dport);
  a.interval = interval;
  return a;
}

constexpr Timestamp kMin = 60 * kMicrosPerSecond;

TEST(MatchAlertTest, FloodAlertMatchesActiveFloodEvent) {
  GroundTruthLedger truth;
  truth.add(flood_event(IPv4(129, 105, 1, 1), 80, kMin, 3 * kMin));
  IntervalClock clock(60);
  const auto m =
      match_alert(flood_alert(IPv4(129, 105, 1, 1), 80, 1), truth, clock);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->kind, EventKind::kSynFloodSpoofed);
}

TEST(MatchAlertTest, WrongIntervalDoesNotMatch) {
  GroundTruthLedger truth;
  truth.add(flood_event(IPv4(129, 105, 1, 1), 80, kMin, 2 * kMin));
  IntervalClock clock(60);
  EXPECT_FALSE(
      match_alert(flood_alert(IPv4(129, 105, 1, 1), 80, 5), truth, clock)
          .has_value());
}

TEST(MatchAlertTest, WrongVictimDoesNotMatch) {
  GroundTruthLedger truth;
  truth.add(flood_event(IPv4(129, 105, 1, 1), 80, kMin, 3 * kMin));
  IntervalClock clock(60);
  EXPECT_FALSE(
      match_alert(flood_alert(IPv4(129, 105, 1, 2), 80, 1), truth, clock)
          .has_value());
}

TEST(MatchAlertTest, AttackEventPreferredOverBenignCause) {
  GroundTruthLedger truth;
  GroundTruthEvent crowd;
  crowd.kind = EventKind::kFlashCrowd;
  crowd.start = kMin;
  crowd.end = 3 * kMin;
  crowd.dip = IPv4(129, 105, 1, 1);
  crowd.dport = 80;
  truth.add(crowd);
  truth.add(flood_event(IPv4(129, 105, 1, 1), 80, kMin, 3 * kMin));
  IntervalClock clock(60);
  const auto m =
      match_alert(flood_alert(IPv4(129, 105, 1, 1), 80, 1), truth, clock);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->kind, EventKind::kSynFloodSpoofed);
}

TEST(EvaluateTest, ScoresPrecisionAndRecall) {
  GroundTruthLedger truth;
  truth.add(flood_event(IPv4(129, 105, 1, 1), 80, kMin, 3 * kMin));
  truth.add(hscan_event(IPv4(6, 6, 6, 6), 445, kMin, 3 * kMin));
  truth.add(hscan_event(IPv4(7, 7, 7, 7), 22, kMin, 3 * kMin));  // missed

  std::vector<IntervalResult> results(3);
  results[1].interval = 1;
  results[1].final.push_back(flood_alert(IPv4(129, 105, 1, 1), 80, 1));
  results[1].final.push_back(hscan_alert(IPv4(6, 6, 6, 6), 445, 1));
  results[1].final.push_back(hscan_alert(IPv4(9, 9, 9, 9), 23, 1));  // FP
  results[2].interval = 2;
  results[2].final.push_back(flood_alert(IPv4(129, 105, 1, 1), 80, 2));

  IntervalClock clock(60);
  const EvaluationSummary s = evaluate(results, truth, clock);
  EXPECT_EQ(s.alerts_total, 4u);
  EXPECT_EQ(s.alerts_matched, 3u);
  EXPECT_EQ(s.alerts_unexplained, 1u);
  EXPECT_EQ(s.attack_events, 3u);
  EXPECT_EQ(s.attack_events_detected, 2u);
  EXPECT_NEAR(s.precision(), 0.75, 1e-9);
  EXPECT_NEAR(s.event_recall(), 2.0 / 3.0, 1e-9);
}

TEST(EvaluateTest, BenignCausesCountedSeparately) {
  GroundTruthLedger truth;
  GroundTruthEvent mis;
  mis.kind = EventKind::kMisconfiguration;
  mis.start = kMin;
  mis.end = 3 * kMin;
  mis.dip = IPv4(129, 105, 200, 200);
  mis.dport = 8080;
  truth.add(mis);

  std::vector<IntervalResult> results(2);
  results[1].interval = 1;
  results[1].final.push_back(
      flood_alert(IPv4(129, 105, 200, 200), 8080, 1));

  const EvaluationSummary s = evaluate(results, truth, IntervalClock(60));
  EXPECT_EQ(s.alerts_benign_cause, 1u);
  EXPECT_EQ(s.alerts_unexplained, 0u);
}

TEST(EvaluateTest, RawPhaseFlagSwitchesAlertSource) {
  GroundTruthLedger truth;
  truth.add(flood_event(IPv4(129, 105, 1, 1), 80, kMin, 3 * kMin));
  std::vector<IntervalResult> results(2);
  results[1].interval = 1;
  // Raw phase saw the flood; the final phase filtered it out.
  results[1].raw.push_back(flood_alert(IPv4(129, 105, 1, 1), 80, 1));

  const EvaluationSummary final_phase =
      evaluate(results, truth, IntervalClock(60), /*use_final_phase=*/true);
  EXPECT_EQ(final_phase.alerts_total, 0u);
  EXPECT_EQ(final_phase.attack_events_detected, 0u);

  const EvaluationSummary raw_phase =
      evaluate(results, truth, IntervalClock(60), /*use_final_phase=*/false);
  EXPECT_EQ(raw_phase.alerts_total, 1u);
  EXPECT_EQ(raw_phase.attack_events_detected, 1u);
}

TEST(MatchAlertTest, TwoIdenticallyLabelledEventsResolveIndividually) {
  // Regression: event-level recall must distinguish events sharing label
  // and time window (identity is the ledger index, not the content).
  GroundTruthLedger truth;
  truth.add(hscan_event(IPv4(6, 6, 6, 6), 445, kMin, 3 * kMin));
  truth.add(hscan_event(IPv4(7, 7, 7, 7), 445, kMin, 3 * kMin));

  std::vector<IntervalResult> results(2);
  results[1].interval = 1;
  results[1].final.push_back(hscan_alert(IPv4(6, 6, 6, 6), 445, 1));

  const EvaluationSummary s = evaluate(results, truth, IntervalClock(60));
  EXPECT_EQ(s.attack_events, 2u);
  EXPECT_EQ(s.attack_events_detected, 1u)
      << "only the alerted scanner's event may count as detected";
}

TEST(DistinctScanSourcesTest, DeduplicatesAcrossIntervals) {
  std::vector<IntervalResult> results(3);
  results[0].final.push_back(hscan_alert(IPv4(6, 6, 6, 6), 445, 0));
  results[1].final.push_back(hscan_alert(IPv4(6, 6, 6, 6), 445, 1));
  results[2].final.push_back(hscan_alert(IPv4(7, 7, 7, 7), 22, 2));
  results[2].final.push_back(flood_alert(IPv4(1, 1, 1, 1), 80, 2));
  const auto sources =
      distinct_scan_sources(results, AttackType::kHorizontalScan);
  EXPECT_EQ(sources.size(), 2u);
}

}  // namespace
}  // namespace hifind
