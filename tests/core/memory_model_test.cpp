#include "core/memory_model.hpp"

#include <gtest/gtest.h>

namespace hifind {
namespace {

TEST(WorstCaseTrafficTest, FlowArithmetic) {
  // 2.5 Gbps of 40-byte packets = 7.8125 Mpps; one minute = 468.75M flows.
  WorstCaseTraffic t{.link_gbps = 2.5, .window_minutes = 1.0};
  EXPECT_NEAR(t.flows(), 468.75e6, 1e3);
}

TEST(MemoryModelTest, CompleteInfoScalesWithSpeedAndWindow) {
  const WorstCaseTraffic base{.link_gbps = 2.5, .window_minutes = 1.0};
  const WorstCaseTraffic fast{.link_gbps = 10.0, .window_minutes = 1.0};
  const WorstCaseTraffic longer{.link_gbps = 2.5, .window_minutes = 5.0};
  EXPECT_EQ(complete_info_bytes(fast), 4 * complete_info_bytes(base));
  EXPECT_EQ(complete_info_bytes(longer), 5 * complete_info_bytes(base));
}

TEST(MemoryModelTest, MatchesPaperOrderOfMagnitude) {
  // Paper Table 9: complete info at 2.5Gbps/1min = 10.3GB; TRW = 5.63GB.
  // Our per-entry costs are explicit lower bounds; same order of magnitude.
  const WorstCaseTraffic t{.link_gbps = 2.5, .window_minutes = 1.0};
  const double complete = static_cast<double>(complete_info_bytes(t));
  const double trw = static_cast<double>(trw_bytes(t));
  EXPECT_GT(complete, 5e9);
  EXPECT_LT(complete, 20e9);
  EXPECT_GT(trw, 3e9);
  EXPECT_LT(trw, 10e9);
}

TEST(MemoryModelTest, SketchMemoryIsFiveOrdersSmaller) {
  const WorstCaseTraffic t{.link_gbps = 10.0, .window_minutes = 5.0};
  const double complete = static_cast<double>(complete_info_bytes(t));
  constexpr double kSketchBytes = 13.2e6;  // paper Sec. 5.5.1
  EXPECT_GT(complete / kSketchBytes, 1e4);
}

TEST(FormatBytesTest, HumanUnits) {
  EXPECT_EQ(format_bytes(13.2e6), "13.2M");
  EXPECT_EQ(format_bytes(10.3e9), "10.3G");
  EXPECT_EQ(format_bytes(512), "512");
  EXPECT_EQ(format_bytes(2048), "2.048K");
}

}  // namespace
}  // namespace hifind
