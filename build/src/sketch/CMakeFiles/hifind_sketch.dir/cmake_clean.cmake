file(REMOVE_RECURSE
  "CMakeFiles/hifind_sketch.dir/kary_sketch.cpp.o"
  "CMakeFiles/hifind_sketch.dir/kary_sketch.cpp.o.d"
  "CMakeFiles/hifind_sketch.dir/reverse_inference.cpp.o"
  "CMakeFiles/hifind_sketch.dir/reverse_inference.cpp.o.d"
  "CMakeFiles/hifind_sketch.dir/reversible_sketch.cpp.o"
  "CMakeFiles/hifind_sketch.dir/reversible_sketch.cpp.o.d"
  "CMakeFiles/hifind_sketch.dir/sketch2d.cpp.o"
  "CMakeFiles/hifind_sketch.dir/sketch2d.cpp.o.d"
  "CMakeFiles/hifind_sketch.dir/verification_sketch.cpp.o"
  "CMakeFiles/hifind_sketch.dir/verification_sketch.cpp.o.d"
  "libhifind_sketch.a"
  "libhifind_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hifind_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
