
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/kary_sketch.cpp" "src/sketch/CMakeFiles/hifind_sketch.dir/kary_sketch.cpp.o" "gcc" "src/sketch/CMakeFiles/hifind_sketch.dir/kary_sketch.cpp.o.d"
  "/root/repo/src/sketch/reverse_inference.cpp" "src/sketch/CMakeFiles/hifind_sketch.dir/reverse_inference.cpp.o" "gcc" "src/sketch/CMakeFiles/hifind_sketch.dir/reverse_inference.cpp.o.d"
  "/root/repo/src/sketch/reversible_sketch.cpp" "src/sketch/CMakeFiles/hifind_sketch.dir/reversible_sketch.cpp.o" "gcc" "src/sketch/CMakeFiles/hifind_sketch.dir/reversible_sketch.cpp.o.d"
  "/root/repo/src/sketch/sketch2d.cpp" "src/sketch/CMakeFiles/hifind_sketch.dir/sketch2d.cpp.o" "gcc" "src/sketch/CMakeFiles/hifind_sketch.dir/sketch2d.cpp.o.d"
  "/root/repo/src/sketch/verification_sketch.cpp" "src/sketch/CMakeFiles/hifind_sketch.dir/verification_sketch.cpp.o" "gcc" "src/sketch/CMakeFiles/hifind_sketch.dir/verification_sketch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hifind_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
