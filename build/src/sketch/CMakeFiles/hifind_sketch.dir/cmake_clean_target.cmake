file(REMOVE_RECURSE
  "libhifind_sketch.a"
)
