# Empty dependencies file for hifind_sketch.
# This may be replaced when dependencies are built.
