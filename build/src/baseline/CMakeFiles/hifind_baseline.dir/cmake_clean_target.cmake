file(REMOVE_RECURSE
  "libhifind_baseline.a"
)
