
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/backscatter.cpp" "src/baseline/CMakeFiles/hifind_baseline.dir/backscatter.cpp.o" "gcc" "src/baseline/CMakeFiles/hifind_baseline.dir/backscatter.cpp.o.d"
  "/root/repo/src/baseline/flow_table.cpp" "src/baseline/CMakeFiles/hifind_baseline.dir/flow_table.cpp.o" "gcc" "src/baseline/CMakeFiles/hifind_baseline.dir/flow_table.cpp.o.d"
  "/root/repo/src/baseline/pcf.cpp" "src/baseline/CMakeFiles/hifind_baseline.dir/pcf.cpp.o" "gcc" "src/baseline/CMakeFiles/hifind_baseline.dir/pcf.cpp.o.d"
  "/root/repo/src/baseline/superspreader.cpp" "src/baseline/CMakeFiles/hifind_baseline.dir/superspreader.cpp.o" "gcc" "src/baseline/CMakeFiles/hifind_baseline.dir/superspreader.cpp.o.d"
  "/root/repo/src/baseline/trw.cpp" "src/baseline/CMakeFiles/hifind_baseline.dir/trw.cpp.o" "gcc" "src/baseline/CMakeFiles/hifind_baseline.dir/trw.cpp.o.d"
  "/root/repo/src/baseline/trw_ac.cpp" "src/baseline/CMakeFiles/hifind_baseline.dir/trw_ac.cpp.o" "gcc" "src/baseline/CMakeFiles/hifind_baseline.dir/trw_ac.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hifind_common.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/hifind_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/hifind_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/hifind_sketch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
