# Empty dependencies file for hifind_baseline.
# This may be replaced when dependencies are built.
