file(REMOVE_RECURSE
  "CMakeFiles/hifind_baseline.dir/backscatter.cpp.o"
  "CMakeFiles/hifind_baseline.dir/backscatter.cpp.o.d"
  "CMakeFiles/hifind_baseline.dir/flow_table.cpp.o"
  "CMakeFiles/hifind_baseline.dir/flow_table.cpp.o.d"
  "CMakeFiles/hifind_baseline.dir/pcf.cpp.o"
  "CMakeFiles/hifind_baseline.dir/pcf.cpp.o.d"
  "CMakeFiles/hifind_baseline.dir/superspreader.cpp.o"
  "CMakeFiles/hifind_baseline.dir/superspreader.cpp.o.d"
  "CMakeFiles/hifind_baseline.dir/trw.cpp.o"
  "CMakeFiles/hifind_baseline.dir/trw.cpp.o.d"
  "CMakeFiles/hifind_baseline.dir/trw_ac.cpp.o"
  "CMakeFiles/hifind_baseline.dir/trw_ac.cpp.o.d"
  "libhifind_baseline.a"
  "libhifind_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hifind_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
