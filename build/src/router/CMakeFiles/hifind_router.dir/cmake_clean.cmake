file(REMOVE_RECURSE
  "CMakeFiles/hifind_router.dir/distributed.cpp.o"
  "CMakeFiles/hifind_router.dir/distributed.cpp.o.d"
  "libhifind_router.a"
  "libhifind_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hifind_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
