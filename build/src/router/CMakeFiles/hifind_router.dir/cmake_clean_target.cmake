file(REMOVE_RECURSE
  "libhifind_router.a"
)
