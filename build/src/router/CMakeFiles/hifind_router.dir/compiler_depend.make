# Empty compiler generated dependencies file for hifind_router.
# This may be replaced when dependencies are built.
