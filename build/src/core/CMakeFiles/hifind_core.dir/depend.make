# Empty dependencies file for hifind_core.
# This may be replaced when dependencies are built.
