file(REMOVE_RECURSE
  "CMakeFiles/hifind_core.dir/evaluation.cpp.o"
  "CMakeFiles/hifind_core.dir/evaluation.cpp.o.d"
  "CMakeFiles/hifind_core.dir/memory_model.cpp.o"
  "CMakeFiles/hifind_core.dir/memory_model.cpp.o.d"
  "CMakeFiles/hifind_core.dir/pipeline.cpp.o"
  "CMakeFiles/hifind_core.dir/pipeline.cpp.o.d"
  "libhifind_core.a"
  "libhifind_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hifind_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
