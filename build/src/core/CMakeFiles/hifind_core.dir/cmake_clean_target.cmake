file(REMOVE_RECURSE
  "libhifind_core.a"
)
