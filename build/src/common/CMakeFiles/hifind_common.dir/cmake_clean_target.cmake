file(REMOVE_RECURSE
  "libhifind_common.a"
)
