# Empty dependencies file for hifind_common.
# This may be replaced when dependencies are built.
