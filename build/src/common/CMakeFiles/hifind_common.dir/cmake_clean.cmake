file(REMOVE_RECURSE
  "CMakeFiles/hifind_common.dir/hash.cpp.o"
  "CMakeFiles/hifind_common.dir/hash.cpp.o.d"
  "CMakeFiles/hifind_common.dir/mangler.cpp.o"
  "CMakeFiles/hifind_common.dir/mangler.cpp.o.d"
  "CMakeFiles/hifind_common.dir/table_printer.cpp.o"
  "CMakeFiles/hifind_common.dir/table_printer.cpp.o.d"
  "CMakeFiles/hifind_common.dir/types.cpp.o"
  "CMakeFiles/hifind_common.dir/types.cpp.o.d"
  "libhifind_common.a"
  "libhifind_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hifind_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
