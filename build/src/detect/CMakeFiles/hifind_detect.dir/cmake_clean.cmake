file(REMOVE_RECURSE
  "CMakeFiles/hifind_detect.dir/alerts.cpp.o"
  "CMakeFiles/hifind_detect.dir/alerts.cpp.o.d"
  "CMakeFiles/hifind_detect.dir/fp_filters.cpp.o"
  "CMakeFiles/hifind_detect.dir/fp_filters.cpp.o.d"
  "CMakeFiles/hifind_detect.dir/hifind.cpp.o"
  "CMakeFiles/hifind_detect.dir/hifind.cpp.o.d"
  "CMakeFiles/hifind_detect.dir/parallel_recorder.cpp.o"
  "CMakeFiles/hifind_detect.dir/parallel_recorder.cpp.o.d"
  "CMakeFiles/hifind_detect.dir/sketch_bank.cpp.o"
  "CMakeFiles/hifind_detect.dir/sketch_bank.cpp.o.d"
  "CMakeFiles/hifind_detect.dir/sketch_wire.cpp.o"
  "CMakeFiles/hifind_detect.dir/sketch_wire.cpp.o.d"
  "libhifind_detect.a"
  "libhifind_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hifind_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
