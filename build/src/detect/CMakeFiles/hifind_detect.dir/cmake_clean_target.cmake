file(REMOVE_RECURSE
  "libhifind_detect.a"
)
