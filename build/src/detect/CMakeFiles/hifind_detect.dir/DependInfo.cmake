
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/alerts.cpp" "src/detect/CMakeFiles/hifind_detect.dir/alerts.cpp.o" "gcc" "src/detect/CMakeFiles/hifind_detect.dir/alerts.cpp.o.d"
  "/root/repo/src/detect/fp_filters.cpp" "src/detect/CMakeFiles/hifind_detect.dir/fp_filters.cpp.o" "gcc" "src/detect/CMakeFiles/hifind_detect.dir/fp_filters.cpp.o.d"
  "/root/repo/src/detect/hifind.cpp" "src/detect/CMakeFiles/hifind_detect.dir/hifind.cpp.o" "gcc" "src/detect/CMakeFiles/hifind_detect.dir/hifind.cpp.o.d"
  "/root/repo/src/detect/parallel_recorder.cpp" "src/detect/CMakeFiles/hifind_detect.dir/parallel_recorder.cpp.o" "gcc" "src/detect/CMakeFiles/hifind_detect.dir/parallel_recorder.cpp.o.d"
  "/root/repo/src/detect/sketch_bank.cpp" "src/detect/CMakeFiles/hifind_detect.dir/sketch_bank.cpp.o" "gcc" "src/detect/CMakeFiles/hifind_detect.dir/sketch_bank.cpp.o.d"
  "/root/repo/src/detect/sketch_wire.cpp" "src/detect/CMakeFiles/hifind_detect.dir/sketch_wire.cpp.o" "gcc" "src/detect/CMakeFiles/hifind_detect.dir/sketch_wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hifind_common.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/hifind_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/hifind_sketch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
