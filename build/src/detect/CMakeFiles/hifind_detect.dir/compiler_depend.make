# Empty compiler generated dependencies file for hifind_detect.
# This may be replaced when dependencies are built.
