# Empty dependencies file for hifind_packet.
# This may be replaced when dependencies are built.
