
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/packet/netflow.cpp" "src/packet/CMakeFiles/hifind_packet.dir/netflow.cpp.o" "gcc" "src/packet/CMakeFiles/hifind_packet.dir/netflow.cpp.o.d"
  "/root/repo/src/packet/netflow_v5.cpp" "src/packet/CMakeFiles/hifind_packet.dir/netflow_v5.cpp.o" "gcc" "src/packet/CMakeFiles/hifind_packet.dir/netflow_v5.cpp.o.d"
  "/root/repo/src/packet/pcap.cpp" "src/packet/CMakeFiles/hifind_packet.dir/pcap.cpp.o" "gcc" "src/packet/CMakeFiles/hifind_packet.dir/pcap.cpp.o.d"
  "/root/repo/src/packet/trace.cpp" "src/packet/CMakeFiles/hifind_packet.dir/trace.cpp.o" "gcc" "src/packet/CMakeFiles/hifind_packet.dir/trace.cpp.o.d"
  "/root/repo/src/packet/trace_io.cpp" "src/packet/CMakeFiles/hifind_packet.dir/trace_io.cpp.o" "gcc" "src/packet/CMakeFiles/hifind_packet.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hifind_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
