file(REMOVE_RECURSE
  "CMakeFiles/hifind_packet.dir/netflow.cpp.o"
  "CMakeFiles/hifind_packet.dir/netflow.cpp.o.d"
  "CMakeFiles/hifind_packet.dir/netflow_v5.cpp.o"
  "CMakeFiles/hifind_packet.dir/netflow_v5.cpp.o.d"
  "CMakeFiles/hifind_packet.dir/pcap.cpp.o"
  "CMakeFiles/hifind_packet.dir/pcap.cpp.o.d"
  "CMakeFiles/hifind_packet.dir/trace.cpp.o"
  "CMakeFiles/hifind_packet.dir/trace.cpp.o.d"
  "CMakeFiles/hifind_packet.dir/trace_io.cpp.o"
  "CMakeFiles/hifind_packet.dir/trace_io.cpp.o.d"
  "libhifind_packet.a"
  "libhifind_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hifind_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
