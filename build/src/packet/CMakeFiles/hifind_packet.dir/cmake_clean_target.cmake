file(REMOVE_RECURSE
  "libhifind_packet.a"
)
