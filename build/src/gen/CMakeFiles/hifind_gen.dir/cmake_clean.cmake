file(REMOVE_RECURSE
  "CMakeFiles/hifind_gen.dir/attacks.cpp.o"
  "CMakeFiles/hifind_gen.dir/attacks.cpp.o.d"
  "CMakeFiles/hifind_gen.dir/background.cpp.o"
  "CMakeFiles/hifind_gen.dir/background.cpp.o.d"
  "CMakeFiles/hifind_gen.dir/ground_truth.cpp.o"
  "CMakeFiles/hifind_gen.dir/ground_truth.cpp.o.d"
  "CMakeFiles/hifind_gen.dir/network_model.cpp.o"
  "CMakeFiles/hifind_gen.dir/network_model.cpp.o.d"
  "CMakeFiles/hifind_gen.dir/scenario.cpp.o"
  "CMakeFiles/hifind_gen.dir/scenario.cpp.o.d"
  "libhifind_gen.a"
  "libhifind_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hifind_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
