# Empty compiler generated dependencies file for hifind_gen.
# This may be replaced when dependencies are built.
