
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/attacks.cpp" "src/gen/CMakeFiles/hifind_gen.dir/attacks.cpp.o" "gcc" "src/gen/CMakeFiles/hifind_gen.dir/attacks.cpp.o.d"
  "/root/repo/src/gen/background.cpp" "src/gen/CMakeFiles/hifind_gen.dir/background.cpp.o" "gcc" "src/gen/CMakeFiles/hifind_gen.dir/background.cpp.o.d"
  "/root/repo/src/gen/ground_truth.cpp" "src/gen/CMakeFiles/hifind_gen.dir/ground_truth.cpp.o" "gcc" "src/gen/CMakeFiles/hifind_gen.dir/ground_truth.cpp.o.d"
  "/root/repo/src/gen/network_model.cpp" "src/gen/CMakeFiles/hifind_gen.dir/network_model.cpp.o" "gcc" "src/gen/CMakeFiles/hifind_gen.dir/network_model.cpp.o.d"
  "/root/repo/src/gen/scenario.cpp" "src/gen/CMakeFiles/hifind_gen.dir/scenario.cpp.o" "gcc" "src/gen/CMakeFiles/hifind_gen.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hifind_common.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/hifind_packet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
