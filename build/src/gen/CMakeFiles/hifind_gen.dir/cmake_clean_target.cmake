file(REMOVE_RECURSE
  "libhifind_gen.a"
)
