# Empty compiler generated dependencies file for ablation_sketch_shape.
# This may be replaced when dependencies are built.
