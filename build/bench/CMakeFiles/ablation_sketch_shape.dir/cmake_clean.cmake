file(REMOVE_RECURSE
  "CMakeFiles/ablation_sketch_shape.dir/ablation_sketch_shape.cpp.o"
  "CMakeFiles/ablation_sketch_shape.dir/ablation_sketch_shape.cpp.o.d"
  "ablation_sketch_shape"
  "ablation_sketch_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sketch_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
