file(REMOVE_RECURSE
  "CMakeFiles/table4_phases.dir/table4_phases.cpp.o"
  "CMakeFiles/table4_phases.dir/table4_phases.cpp.o.d"
  "table4_phases"
  "table4_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
