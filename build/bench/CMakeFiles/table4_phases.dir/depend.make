# Empty dependencies file for table4_phases.
# This may be replaced when dependencies are built.
