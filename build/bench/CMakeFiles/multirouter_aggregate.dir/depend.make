# Empty dependencies file for multirouter_aggregate.
# This may be replaced when dependencies are built.
