file(REMOVE_RECURSE
  "CMakeFiles/multirouter_aggregate.dir/multirouter_aggregate.cpp.o"
  "CMakeFiles/multirouter_aggregate.dir/multirouter_aggregate.cpp.o.d"
  "multirouter_aggregate"
  "multirouter_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multirouter_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
