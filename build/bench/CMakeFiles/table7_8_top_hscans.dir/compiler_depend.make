# Empty compiler generated dependencies file for table7_8_top_hscans.
# This may be replaced when dependencies are built.
