file(REMOVE_RECURSE
  "CMakeFiles/table7_8_top_hscans.dir/table7_8_top_hscans.cpp.o"
  "CMakeFiles/table7_8_top_hscans.dir/table7_8_top_hscans.cpp.o.d"
  "table7_8_top_hscans"
  "table7_8_top_hscans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_8_top_hscans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
