
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_threshold.cpp" "bench/CMakeFiles/ablation_threshold.dir/ablation_threshold.cpp.o" "gcc" "bench/CMakeFiles/ablation_threshold.dir/ablation_threshold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hifind_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/hifind_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/hifind_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/router/CMakeFiles/hifind_router.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/hifind_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/hifind_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/hifind_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hifind_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
