file(REMOVE_RECURSE
  "CMakeFiles/accesses_per_packet.dir/accesses_per_packet.cpp.o"
  "CMakeFiles/accesses_per_packet.dir/accesses_per_packet.cpp.o.d"
  "accesses_per_packet"
  "accesses_per_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accesses_per_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
