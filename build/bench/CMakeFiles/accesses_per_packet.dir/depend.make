# Empty dependencies file for accesses_per_packet.
# This may be replaced when dependencies are built.
