# Empty compiler generated dependencies file for table3_uniqueness.
# This may be replaced when dependencies are built.
