file(REMOVE_RECURSE
  "CMakeFiles/table3_uniqueness.dir/table3_uniqueness.cpp.o"
  "CMakeFiles/table3_uniqueness.dir/table3_uniqueness.cpp.o.d"
  "table3_uniqueness"
  "table3_uniqueness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_uniqueness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
