# Empty dependencies file for detection_time.
# This may be replaced when dependencies are built.
