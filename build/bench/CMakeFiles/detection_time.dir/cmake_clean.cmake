file(REMOVE_RECURSE
  "CMakeFiles/detection_time.dir/detection_time.cpp.o"
  "CMakeFiles/detection_time.dir/detection_time.cpp.o.d"
  "detection_time"
  "detection_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detection_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
