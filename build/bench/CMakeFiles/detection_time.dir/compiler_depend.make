# Empty compiler generated dependencies file for detection_time.
# This may be replaced when dependencies are built.
