file(REMOVE_RECURSE
  "CMakeFiles/table5_hscan_trw.dir/table5_hscan_trw.cpp.o"
  "CMakeFiles/table5_hscan_trw.dir/table5_hscan_trw.cpp.o.d"
  "table5_hscan_trw"
  "table5_hscan_trw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_hscan_trw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
