# Empty dependencies file for table5_hscan_trw.
# This may be replaced when dependencies are built.
