# Empty compiler generated dependencies file for table1_functionality.
# This may be replaced when dependencies are built.
