file(REMOVE_RECURSE
  "CMakeFiles/table1_functionality.dir/table1_functionality.cpp.o"
  "CMakeFiles/table1_functionality.dir/table1_functionality.cpp.o.d"
  "table1_functionality"
  "table1_functionality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_functionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
