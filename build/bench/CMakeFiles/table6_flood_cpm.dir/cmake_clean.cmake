file(REMOVE_RECURSE
  "CMakeFiles/table6_flood_cpm.dir/table6_flood_cpm.cpp.o"
  "CMakeFiles/table6_flood_cpm.dir/table6_flood_cpm.cpp.o.d"
  "table6_flood_cpm"
  "table6_flood_cpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_flood_cpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
