# Empty dependencies file for table6_flood_cpm.
# This may be replaced when dependencies are built.
