file(REMOVE_RECURSE
  "CMakeFiles/fig4_bimodal.dir/fig4_bimodal.cpp.o"
  "CMakeFiles/fig4_bimodal.dir/fig4_bimodal.cpp.o.d"
  "fig4_bimodal"
  "fig4_bimodal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_bimodal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
