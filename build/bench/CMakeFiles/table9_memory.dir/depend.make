# Empty dependencies file for table9_memory.
# This may be replaced when dependencies are built.
