file(REMOVE_RECURSE
  "CMakeFiles/table9_memory.dir/table9_memory.cpp.o"
  "CMakeFiles/table9_memory.dir/table9_memory.cpp.o.d"
  "table9_memory"
  "table9_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
