# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_packet[1]_include.cmake")
include("/root/repo/build/tests/test_sketch[1]_include.cmake")
include("/root/repo/build/tests/test_forecast[1]_include.cmake")
include("/root/repo/build/tests/test_detect[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_gen[1]_include.cmake")
include("/root/repo/build/tests/test_router[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
