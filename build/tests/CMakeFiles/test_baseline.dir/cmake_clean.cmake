file(REMOVE_RECURSE
  "CMakeFiles/test_baseline.dir/baseline/backscatter_test.cpp.o"
  "CMakeFiles/test_baseline.dir/baseline/backscatter_test.cpp.o.d"
  "CMakeFiles/test_baseline.dir/baseline/cpm_test.cpp.o"
  "CMakeFiles/test_baseline.dir/baseline/cpm_test.cpp.o.d"
  "CMakeFiles/test_baseline.dir/baseline/flow_table_test.cpp.o"
  "CMakeFiles/test_baseline.dir/baseline/flow_table_test.cpp.o.d"
  "CMakeFiles/test_baseline.dir/baseline/pcf_test.cpp.o"
  "CMakeFiles/test_baseline.dir/baseline/pcf_test.cpp.o.d"
  "CMakeFiles/test_baseline.dir/baseline/superspreader_test.cpp.o"
  "CMakeFiles/test_baseline.dir/baseline/superspreader_test.cpp.o.d"
  "CMakeFiles/test_baseline.dir/baseline/trw_ac_test.cpp.o"
  "CMakeFiles/test_baseline.dir/baseline/trw_ac_test.cpp.o.d"
  "CMakeFiles/test_baseline.dir/baseline/trw_test.cpp.o"
  "CMakeFiles/test_baseline.dir/baseline/trw_test.cpp.o.d"
  "test_baseline"
  "test_baseline.pdb"
  "test_baseline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
