
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/byte_io_test.cpp" "tests/CMakeFiles/test_common.dir/common/byte_io_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/byte_io_test.cpp.o.d"
  "/root/repo/tests/common/hash_test.cpp" "tests/CMakeFiles/test_common.dir/common/hash_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/hash_test.cpp.o.d"
  "/root/repo/tests/common/interval_test.cpp" "tests/CMakeFiles/test_common.dir/common/interval_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/interval_test.cpp.o.d"
  "/root/repo/tests/common/mangler_test.cpp" "tests/CMakeFiles/test_common.dir/common/mangler_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/mangler_test.cpp.o.d"
  "/root/repo/tests/common/rng_test.cpp" "tests/CMakeFiles/test_common.dir/common/rng_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/rng_test.cpp.o.d"
  "/root/repo/tests/common/table_printer_test.cpp" "tests/CMakeFiles/test_common.dir/common/table_printer_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/table_printer_test.cpp.o.d"
  "/root/repo/tests/common/types_test.cpp" "tests/CMakeFiles/test_common.dir/common/types_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/types_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hifind_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/hifind_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/hifind_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/router/CMakeFiles/hifind_router.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/hifind_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/hifind_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/hifind_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hifind_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
