file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/dos_resilience_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/dos_resilience_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/end_to_end_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/end_to_end_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/multi_router_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/multi_router_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/netflow_pipeline_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/netflow_pipeline_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/pcap_pipeline_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/pcap_pipeline_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/sketch_vs_exact_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/sketch_vs_exact_test.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
