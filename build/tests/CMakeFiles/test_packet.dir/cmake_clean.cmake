file(REMOVE_RECURSE
  "CMakeFiles/test_packet.dir/packet/netflow_test.cpp.o"
  "CMakeFiles/test_packet.dir/packet/netflow_test.cpp.o.d"
  "CMakeFiles/test_packet.dir/packet/netflow_v5_test.cpp.o"
  "CMakeFiles/test_packet.dir/packet/netflow_v5_test.cpp.o.d"
  "CMakeFiles/test_packet.dir/packet/packet_test.cpp.o"
  "CMakeFiles/test_packet.dir/packet/packet_test.cpp.o.d"
  "CMakeFiles/test_packet.dir/packet/pcap_test.cpp.o"
  "CMakeFiles/test_packet.dir/packet/pcap_test.cpp.o.d"
  "CMakeFiles/test_packet.dir/packet/trace_io_test.cpp.o"
  "CMakeFiles/test_packet.dir/packet/trace_io_test.cpp.o.d"
  "CMakeFiles/test_packet.dir/packet/trace_test.cpp.o"
  "CMakeFiles/test_packet.dir/packet/trace_test.cpp.o.d"
  "test_packet"
  "test_packet.pdb"
  "test_packet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
