
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sketch/kary_sketch_test.cpp" "tests/CMakeFiles/test_sketch.dir/sketch/kary_sketch_test.cpp.o" "gcc" "tests/CMakeFiles/test_sketch.dir/sketch/kary_sketch_test.cpp.o.d"
  "/root/repo/tests/sketch/reverse_inference_test.cpp" "tests/CMakeFiles/test_sketch.dir/sketch/reverse_inference_test.cpp.o" "gcc" "tests/CMakeFiles/test_sketch.dir/sketch/reverse_inference_test.cpp.o.d"
  "/root/repo/tests/sketch/reversible_sketch_test.cpp" "tests/CMakeFiles/test_sketch.dir/sketch/reversible_sketch_test.cpp.o" "gcc" "tests/CMakeFiles/test_sketch.dir/sketch/reversible_sketch_test.cpp.o.d"
  "/root/repo/tests/sketch/sketch2d_test.cpp" "tests/CMakeFiles/test_sketch.dir/sketch/sketch2d_test.cpp.o" "gcc" "tests/CMakeFiles/test_sketch.dir/sketch/sketch2d_test.cpp.o.d"
  "/root/repo/tests/sketch/sketch_properties_test.cpp" "tests/CMakeFiles/test_sketch.dir/sketch/sketch_properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_sketch.dir/sketch/sketch_properties_test.cpp.o.d"
  "/root/repo/tests/sketch/verification_sketch_test.cpp" "tests/CMakeFiles/test_sketch.dir/sketch/verification_sketch_test.cpp.o" "gcc" "tests/CMakeFiles/test_sketch.dir/sketch/verification_sketch_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hifind_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/hifind_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/hifind_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/router/CMakeFiles/hifind_router.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/hifind_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/hifind_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/hifind_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hifind_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
