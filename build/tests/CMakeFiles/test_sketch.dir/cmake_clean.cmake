file(REMOVE_RECURSE
  "CMakeFiles/test_sketch.dir/sketch/kary_sketch_test.cpp.o"
  "CMakeFiles/test_sketch.dir/sketch/kary_sketch_test.cpp.o.d"
  "CMakeFiles/test_sketch.dir/sketch/reverse_inference_test.cpp.o"
  "CMakeFiles/test_sketch.dir/sketch/reverse_inference_test.cpp.o.d"
  "CMakeFiles/test_sketch.dir/sketch/reversible_sketch_test.cpp.o"
  "CMakeFiles/test_sketch.dir/sketch/reversible_sketch_test.cpp.o.d"
  "CMakeFiles/test_sketch.dir/sketch/sketch2d_test.cpp.o"
  "CMakeFiles/test_sketch.dir/sketch/sketch2d_test.cpp.o.d"
  "CMakeFiles/test_sketch.dir/sketch/sketch_properties_test.cpp.o"
  "CMakeFiles/test_sketch.dir/sketch/sketch_properties_test.cpp.o.d"
  "CMakeFiles/test_sketch.dir/sketch/verification_sketch_test.cpp.o"
  "CMakeFiles/test_sketch.dir/sketch/verification_sketch_test.cpp.o.d"
  "test_sketch"
  "test_sketch.pdb"
  "test_sketch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
